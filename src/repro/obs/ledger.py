"""The run ledger: a persistent, append-only history of completed runs.

Every finished sweep, single simulation, differential check, and bench
invocation can append one entry here, so the repository accumulates a
*longitudinal* record — metrics per commit, per host, per day — instead
of overwriting a handful of ``BENCH_*.json`` snapshots.  The regression
sentinel (:mod:`repro.obs.regress`) and the HTML dashboard
(:mod:`repro.obs.dashboard`) both read from this store.

Design:

* **Append-only JSONL segments.**  Entries are single JSON lines
  appended to numbered segment files (``segment-000001.jsonl``, …)
  under the ledger directory; a segment rotates once it crosses
  :data:`SEGMENT_MAX_BYTES`.  Nothing ever rewrites an existing line
  (``gc`` builds fresh segments and swaps them in).
* **Content-addressed.**  Each entry's ``run_id`` is the truncated
  SHA-256 of its canonical JSON body, so ids are stable, collision-safe
  handles usable from the CLI (any unambiguous prefix resolves).
* **Schema-versioned.**  Entries carry :data:`LEDGER_SCHEMA`, the same
  discipline as the event stream; readers skip (and count) lines they
  cannot parse rather than crashing on a torn write.
* **Never perturbing, never fatal.**  Writers record *after* the run
  completes, touch no simulation state, and swallow I/O errors — a
  full disk must not fail a sweep.  ``REPRO_LEDGER=0`` disables writes
  entirely; ``REPRO_LEDGER_DIR`` relocates the store (the default is
  ``~/.local/share/repro/ledger``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from datetime import datetime, timezone
from pathlib import Path

#: Bump on any backwards-incompatible change to entry fields.
LEDGER_SCHEMA = 1

#: Rotate to a fresh segment file once the current one crosses this.
SEGMENT_MAX_BYTES = 4 << 20

#: The entry kinds writers are allowed to record.
ENTRY_KINDS = frozenset(
    {"simulate", "sweep", "check", "bench", "experiments"}
)


class LedgerError(ValueError):
    """A ledger lookup or read failed (missing, ambiguous, corrupt)."""


def default_ledger_dir() -> Path:
    env = os.environ.get("REPRO_LEDGER_DIR")
    if env:
        return Path(env)
    return Path.home() / ".local" / "share" / "repro" / "ledger"


def ledger_enabled() -> bool:
    return os.environ.get("REPRO_LEDGER", "1") != "0"


def _canonical(body: dict) -> bytes:
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), default=str
    ).encode()


def _utcnow() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _created_ts(entry: dict, default: float) -> float:
    """The entry's ``created`` stamp as a POSIX timestamp."""
    raw = entry.get("created")
    if not isinstance(raw, str):
        return default
    try:
        parsed = datetime.strptime(raw, "%Y-%m-%dT%H:%M:%SZ")
    except ValueError:
        try:
            parsed = datetime.fromisoformat(raw.replace("Z", "+00:00"))
        except ValueError:
            return default
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed.timestamp()


class RunLedger:
    """An append-only, content-addressed JSONL store of run records."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_ledger_dir()
        #: Unparseable lines encountered by the last full read.
        self.corrupt_lines = 0

    @classmethod
    def from_env(cls) -> "RunLedger | None":
        """The default ledger, or ``None`` when ``REPRO_LEDGER=0``."""
        return cls() if ledger_enabled() else None

    # -- writing --------------------------------------------------------

    def record(
        self,
        kind: str,
        metrics: dict | None = None,
        phases: dict | None = None,
        spec_digests: list | None = None,
        cell_times: dict | None = None,
        label: str | None = None,
        extra: dict | None = None,
    ) -> str:
        """Append one run record; returns its content-addressed id."""
        if kind not in ENTRY_KINDS:
            raise ValueError(
                f"unknown ledger entry kind {kind!r} "
                f"(expected one of {sorted(ENTRY_KINDS)})"
            )
        from repro.obs.hostinfo import host_metadata

        body = {
            "schema": LEDGER_SCHEMA,
            "kind": kind,
            "created": _utcnow(),
            "host": host_metadata(),
        }
        if label is not None:
            body["label"] = label
        if spec_digests:
            body["spec_digests"] = list(spec_digests)
        if phases:
            body["phases"] = dict(phases)
        if cell_times:
            body["cell_times"] = {
                digest: round(seconds, 4)
                for digest, seconds in cell_times.items()
            }
        if metrics is not None:
            body["metrics"] = metrics
        if extra:
            body["extra"] = extra
        return self.append_entry(body)

    def append_entry(self, body: dict) -> str:
        """Append a prepared entry body; stamps schema + ``run_id``."""
        entry = dict(body)
        entry.setdefault("schema", LEDGER_SCHEMA)
        entry.setdefault("created", _utcnow())
        entry["run_id"] = hashlib.sha256(
            _canonical({k: v for k, v in entry.items() if k != "run_id"})
        ).hexdigest()[:16]
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self._write_segment(), "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True, default=str))
            fh.write("\n")
        return entry["run_id"]

    def _write_segment(self) -> Path:
        segments = self.segments()
        if segments:
            last = segments[-1]
            try:
                if last.stat().st_size < SEGMENT_MAX_BYTES:
                    return last
            except OSError:
                pass
            seq = int(last.stem.split("-")[-1]) + 1
        else:
            seq = 1
        return self.root / f"segment-{seq:06d}.jsonl"

    # -- reading --------------------------------------------------------

    def segments(self) -> list:
        """Segment files in append order."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("segment-*.jsonl"))

    def entries(self) -> list:
        """Every parseable entry, oldest first; corrupt lines counted."""
        out = []
        corrupt = 0
        for segment in self.segments():
            try:
                with open(segment) as fh:
                    lines = fh.readlines()
            except OSError:
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A torn write from a crashed run; the store stays
                    # readable, the loss is counted, never raised.
                    corrupt += 1
                    continue
                if isinstance(entry, dict):
                    out.append(entry)
                else:
                    corrupt += 1
        self.corrupt_lines = corrupt
        return out

    def get(self, run_id: str) -> dict:
        """The entry whose id starts with ``run_id`` (must be unique)."""
        if not run_id:
            raise LedgerError("empty run id")
        matches = [
            entry
            for entry in self.entries()
            if str(entry.get("run_id", "")).startswith(run_id)
        ]
        if not matches:
            raise LedgerError(
                f"no ledger entry matching {run_id!r} in {self.root}"
            )
        if len({m.get("run_id") for m in matches}) > 1:
            ids = ", ".join(sorted(m["run_id"] for m in matches)[:4])
            raise LedgerError(
                f"run id {run_id!r} is ambiguous (matches {ids}, ...)"
            )
        return matches[-1]

    # -- maintenance ----------------------------------------------------

    def gc(
        self,
        keep: int | None = None,
        older_than_days: float | None = None,
        max_bytes: int | None = None,
        dry_run: bool = False,
        now: datetime | None = None,
    ) -> int:
        """Trim the store by count, age, and/or size; returns how many
        entries were (or, under ``dry_run``, would be) removed.

        Criteria compose: age first (drop entries whose ``created`` is
        more than ``older_than_days`` old), then size (drop oldest
        entries until the serialized survivors fit ``max_bytes``), then
        count (keep only the newest ``keep``).  With no criterion at
        all, ``keep`` defaults to 100 — the original behavior.  Entries
        whose ``created`` stamp cannot be parsed are treated as new
        (never age-collected; losing history to a malformed timestamp
        would be worse than keeping it).

        Rebuilds the store as fresh segments and atomically swaps them
        in, so a concurrent reader sees either the old or the new store.
        """
        if keep is None and older_than_days is None and max_bytes is None:
            keep = 100
        if keep is not None and keep < 0:
            raise ValueError("keep must be >= 0")
        if older_than_days is not None and older_than_days < 0:
            raise ValueError("older_than_days must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries = self.entries()
        kept = entries
        if older_than_days is not None:
            if now is None:
                now = datetime.now(timezone.utc)
            cutoff = now.timestamp() - older_than_days * 86400.0
            kept = [
                entry for entry in kept
                if _created_ts(entry, default=now.timestamp()) >= cutoff
            ]
        if max_bytes is not None:
            sizes = [
                len(json.dumps(e, sort_keys=True, default=str)) + 1
                for e in kept
            ]
            total = sum(sizes)
            drop = 0
            while drop < len(kept) and total > max_bytes:
                total -= sizes[drop]  # oldest first
                drop += 1
            kept = kept[drop:]
        if keep is not None and len(kept) > keep:
            kept = kept[-keep:] if keep else []
        removed = len(entries) - len(kept)
        if removed <= 0 or dry_run:
            return max(removed, 0)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=".gc-", suffix=".jsonl"
        )
        with os.fdopen(fd, "w") as fh:
            for entry in kept:
                fh.write(json.dumps(entry, sort_keys=True, default=str))
                fh.write("\n")
        old = self.segments()
        os.replace(tmp_name, self.root / "segment-000001.jsonl.new")
        for segment in old:
            try:
                segment.unlink()
            except OSError:
                pass
        os.replace(
            self.root / "segment-000001.jsonl.new",
            self.root / "segment-000001.jsonl",
        )
        return removed

    def export(self, path) -> int:
        """Write every entry to ``path`` as a JSON array; returns count."""
        entries = self.entries()
        with open(path, "w") as fh:
            json.dump(entries, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return len(entries)

    def import_entries(self, path) -> dict:
        """Merge an ``export`` file back in; the inverse of :meth:`export`.

        Accepts a JSON array (what ``export`` writes) or raw JSONL (a
        segment file copied off another host).  Entries are merged by
        content-addressed ``run_id``: re-importing our own export is a
        no-op, and importing a colleague's export interleaves their
        history without duplicating shared entries.  An entry whose
        stored ``run_id`` does not match the recomputed hash of its
        body is rejected — the id doubles as the integrity check.

        Returns ``{"imported", "duplicates", "rejected"}`` counts.
        """
        with open(path) as fh:
            text = fh.read()
        rejected = 0
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, list):
            data = doc
        elif isinstance(doc, dict) and ("run_id" in doc or "kind" in doc):
            # A one-line JSONL segment parses as a whole-document dict;
            # accept it when it looks like a ledger entry.
            data = [doc]
        elif doc is not None:
            raise LedgerError(
                f"{path}: expected a JSON array of ledger entries"
            )
        else:
            data = []
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    data.append(json.loads(line))
                except json.JSONDecodeError:
                    rejected += 1
        have = {
            entry.get("run_id")
            for entry in self.entries()
            if entry.get("run_id")
        }
        imported = duplicates = 0
        for entry in data:
            if not isinstance(entry, dict):
                rejected += 1
                continue
            expect = hashlib.sha256(
                _canonical({
                    k: v for k, v in entry.items() if k != "run_id"
                })
            ).hexdigest()[:16]
            stored = entry.get("run_id")
            if stored is not None and stored != expect:
                rejected += 1
                continue
            if expect in have:
                duplicates += 1
                continue
            # append_entry restamps from the body, reproducing `expect`
            # bit-for-bit — imported ids stay stable across hosts.  (A
            # hand-written entry missing schema/created gets those
            # defaulted first, shifting its id; track the real one.)
            have.add(self.append_entry(entry))
            have.add(expect)
            imported += 1
        return {
            "imported": imported,
            "duplicates": duplicates,
            "rejected": rejected,
        }


def record_run(kind: str, **kw) -> str | None:
    """Best-effort append to the default ledger.

    Returns the new entry's id, or ``None`` when the ledger is disabled
    (``REPRO_LEDGER=0``) or the write failed — recording history must
    never fail the run that produced it.
    """
    ledger = RunLedger.from_env()
    if ledger is None:
        return None
    try:
        return ledger.record(kind, **kw)
    except (OSError, ValueError):
        return None
