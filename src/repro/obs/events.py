"""Structured simulation event tracing.

The :class:`EventTracer` is a ring-buffered, schema-versioned event
stream fed by hooks in the simulation engine, the SP-predictor, the
SP-table, and the directory protocol.  It records the paper's *temporal*
story — when each sync-epoch began and ended, what every prediction
guessed versus what the directory knew, when confidence collapsed and
recovery re-extracted a hot set — none of which survives into the
end-of-run aggregate counters.

Design constraints, in order:

* **Zero overhead when off.**  Every hook site guards with a single
  falsy attribute check (``if tracer is not None`` / ``if self.tracer``)
  on a value that defaults to ``None``; no event object is built, no
  method is called.  Tracing never touches a simulation counter in
  either mode, so results are bit-identical with tracing on, off, or
  absent — ``repro obs overhead`` and the fuzzer's engine cells certify
  exactly that.
* **Bounded memory.**  Events land in a ``deque(maxlen=capacity)``;
  when the ring wraps, the *oldest* events drop and ``dropped`` counts
  them, so a long run degrades to a suffix trace instead of an OOM.
* **Schema-versioned.**  Every serialized stream carries
  :data:`SCHEMA_VERSION`; :func:`validate_events` checks structural
  invariants (epoch begin/end pairing, predictions referencing the live
  epoch, per-core timestamp monotonicity) and is run by
  ``repro check fuzz`` on every engine cell.

Event kinds (the ``t`` field; every event also has ``core`` and ``ts``):

==============  ====================================================
``sync``        a sync-point executed: ``kind``, ``pc``, [``lock``]
``epoch_begin`` a sync-epoch opened: ``epoch`` (per-core seq),
                ``key`` (SP-table key or None for the pre-sync
                interval), ``kind``
``epoch_end``   the epoch closed: ``epoch``, ``dur``, ``misses``,
                ``comm``, ``preds``, ``correct``
``pred``        one predicted L2 miss: ``epoch``, ``miss`` (ordinal
                within the epoch), ``kind``, ``predicted``,
                ``actual`` (the minimal sufficient set), ``correct``
                (None on a non-communicating miss), ``source``;
                when forensics ran, mispredicts also carry ``tax``
                (taxonomy class)
``pred_repair`` the directory repaired an insufficient predicted
                set: ``kind``, ``predicted``, ``minimal``,
                ``missing``
``sp_insert``   an SP-table entry stored a signature: ``key``,
                ``signature``
``sp_evict``    a capacity-capped SP-table evicted ``key``
``sp_recover``  confidence-triggered recovery adopted ``hot``
``conf``        a confidence counter transitioned to ``value``
                (emitted at exhaustion; per-miss decrements are
                derivable from the ``pred`` correctness stream)
``warmup``      the d=0 warm-up adopted ``hot``
``finish``      a core drained its stream
==============  ====================================================

Timestamps are core-local cycle counts.  Epoch boundaries carry exact
engine clocks; per-miss events are placed by cumulative miss latency
within their epoch (a lower bound on the true clock, monotonic and
always inside the epoch), which is what timeline exporters need.
"""

from __future__ import annotations

import json
from collections import deque

#: Bump on any backwards-incompatible change to event fields.
SCHEMA_VERSION = 1

#: Default ring capacity (events kept); small workloads fit entirely.
DEFAULT_CAPACITY = 1 << 16

EVENT_KINDS = frozenset({
    "sync", "epoch_begin", "epoch_end", "pred", "pred_repair",
    "sp_insert", "sp_evict", "sp_recover", "conf", "warmup", "finish",
})


class EventTracer:
    """Ring-buffered structured event stream for one simulation run."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.emitted = 0
        self.meta: dict = {}
        # Per-core epoch bookkeeping: the open epoch's running stats, the
        # next epoch ordinal, and the last cycle stamp seen (used to
        # timestamp sub-component events that have no clock of their own).
        self._open: dict = {}
        self._epoch_seq: dict = {}
        self._last_ts: dict = {}

    @property
    def dropped(self) -> int:
        """Events lost to ring wrap-around (oldest first)."""
        return self.emitted - len(self.events)

    # ------------------------------------------------------------------
    # engine-facing hooks
    # ------------------------------------------------------------------

    def begin_run(self, workload: str, num_cores: int, protocol: str,
                  predictor: str) -> None:
        """Stamp run identity into the stream's metadata."""
        self.meta = {
            "workload": workload,
            "num_cores": num_cores,
            "protocol": protocol,
            "predictor": predictor,
        }

    def on_sync(self, core: int, ts: int, static_id) -> None:
        """A sync-point executed on ``core`` at engine clock ``ts``."""
        self._ensure_epoch(core)
        self._last_ts[core] = ts
        self._close_epoch(core, ts)
        fields = {"kind": static_id.kind.value, "pc": static_id.pc}
        if static_id.lock_addr is not None:
            fields["lock"] = static_id.lock_addr
        self.emit("sync", core, ts, **fields)
        self._open_epoch(
            core, ts, list(static_id.table_key), static_id.kind.value
        )

    def on_miss(self, core, kind, predicted, actual, correct, source,
                latency, communicating) -> dict | None:
        """One L2 miss completed; emits a ``pred`` event if predicted.

        Returns the emitted event dict (or ``None`` when nothing was
        predicted) so the engine can stamp post-hoc annotations — the
        forensics layer's taxonomy class rides along as ``tax``.
        """
        epoch = self._ensure_epoch(core)
        epoch["misses"] += 1
        if communicating:
            epoch["comm"] += 1
        cursor = epoch["cursor"] + latency
        epoch["cursor"] = cursor
        self._last_ts[core] = cursor
        if predicted is None:
            return None
        epoch["preds"] += 1
        if correct:
            epoch["correct"] += 1
        return self.emit(
            "pred", core, cursor,
            epoch=epoch["epoch"], miss=epoch["misses"], kind=kind,
            predicted=sorted(predicted), actual=sorted(actual),
            correct=correct, source=source,
        )

    def on_finish(self, core: int, ts: int) -> None:
        """``core`` drained its stream; closes the trailing epoch."""
        self._last_ts[core] = ts
        self._close_epoch(core, ts)
        self.emit("finish", core, ts)

    # ------------------------------------------------------------------
    # predictor / SP-table / protocol hooks
    # ------------------------------------------------------------------

    def sp_insert(self, core, key, signature) -> None:
        self.emit("sp_insert", core, self._last_ts.get(core),
                  key=list(key), signature=sorted(signature))

    def sp_evict(self, key) -> None:
        self.emit("sp_evict", None, None, key=list(key))

    def sp_recover(self, core, hot) -> None:
        self.emit("sp_recover", core, self._last_ts.get(core),
                  hot=sorted(hot))

    def confidence(self, core, value) -> None:
        self.emit("conf", core, self._last_ts.get(core), value=value)

    def warmup(self, core, hot) -> None:
        self.emit("warmup", core, self._last_ts.get(core), hot=sorted(hot))

    def pred_repair(self, core, kind, predicted, minimal) -> None:
        self.emit(
            "pred_repair", core, self._last_ts.get(core), kind=kind,
            predicted=sorted(predicted), minimal=sorted(minimal),
            missing=sorted(minimal - predicted),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def emit(self, t, core=None, ts=None, **fields) -> dict:
        event = {"t": t, "core": core, "ts": ts}
        event.update(fields)
        self.events.append(event)
        self.emitted += 1
        return event

    def _open_epoch(self, core, ts, key, kind) -> dict:
        seq = self._epoch_seq.get(core, 0)
        self._epoch_seq[core] = seq + 1
        epoch = {
            "epoch": seq, "begin": ts, "cursor": ts,
            "misses": 0, "comm": 0, "preds": 0, "correct": 0,
        }
        self._open[core] = epoch
        self.emit("epoch_begin", core, ts, epoch=seq, key=key, kind=kind)
        return epoch

    def _ensure_epoch(self, core) -> dict:
        """The open epoch for ``core``, opening the pre-sync interval
        (epoch 0, key None) lazily on a core's first event."""
        epoch = self._open.get(core)
        if epoch is None:
            epoch = self._open_epoch(core, 0, None, "start")
        return epoch

    def _close_epoch(self, core, ts) -> None:
        epoch = self._open.pop(core, None)
        if epoch is None:
            return
        self.emit(
            "epoch_end", core, ts,
            epoch=epoch["epoch"],
            dur=None if ts is None else max(0, ts - epoch["begin"]),
            misses=epoch["misses"], comm=epoch["comm"],
            preds=epoch["preds"], correct=epoch["correct"],
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_doc(self) -> dict:
        """The complete schema-versioned stream as a JSON-safe dict."""
        return {
            "schema": SCHEMA_VERSION,
            "meta": dict(self.meta),
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "events": list(self.events),
        }


def save_events(tracer_or_doc, path) -> dict:
    """Write an event stream to ``path`` as JSON; returns the doc."""
    doc = (
        tracer_or_doc.to_doc()
        if isinstance(tracer_or_doc, EventTracer)
        else tracer_or_doc
    )
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc


def load_events(path) -> dict:
    """Load an event stream written by :func:`save_events`.

    Raises :class:`ValueError` on a non-event file or a schema the
    current code does not understand.
    """
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict) or "schema" not in doc or "events" not in doc:
        raise ValueError(f"{path}: not a repro event stream")
    if doc["schema"] != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: event schema v{doc['schema']} "
            f"(this build reads v{SCHEMA_VERSION})"
        )
    return doc


# ----------------------------------------------------------------------
# structural validation (used by `repro check fuzz`)
# ----------------------------------------------------------------------

def validate_events(doc, max_errors: int = 10) -> list:
    """Structural invariants of a complete event stream; returns errors.

    Checks, per core: every ``epoch_begin`` is closed by a matching
    ``epoch_end`` before the next begins; ``pred`` events reference the
    core's currently-open (live) epoch; timestamps never run backwards.
    With a wrapped ring (``dropped > 0``) a core is validated only from
    its first surviving ``epoch_begin`` on, since its earlier pairing
    context was discarded by design.
    """
    errors: list = []

    def err(msg):
        if len(errors) < max_errors:
            errors.append(msg)

    if not isinstance(doc, dict):
        return ["event doc is not a dict"]
    if doc.get("schema") != SCHEMA_VERSION:
        err(f"schema {doc.get('schema')!r} != {SCHEMA_VERSION}")
    events = doc.get("events")
    if not isinstance(events, list):
        err("events is not a list")
        return errors
    truncated = doc.get("dropped", 0) > 0

    open_epoch: dict = {}   # core -> open epoch seq
    initialized: set = set()  # cores whose pairing context is established
    last_ts: dict = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "t" not in ev:
            err(f"event {i}: malformed")
            continue
        t = ev["t"]
        if t not in EVENT_KINDS:
            err(f"event {i}: unknown kind {t!r}")
            continue
        core = ev.get("core")
        ts = ev.get("ts")
        if ts is not None and core is not None:
            prev = last_ts.get(core)
            if prev is not None and ts < prev:
                err(f"event {i}: core {core} ts {ts} < previous {prev}")
            last_ts[core] = ts
        if t == "epoch_begin":
            if core in open_epoch:
                err(f"event {i}: core {core} epoch_begin "
                    f"{ev.get('epoch')} while epoch "
                    f"{open_epoch[core]} still open")
            open_epoch[core] = ev.get("epoch")
            initialized.add(core)
        elif t == "epoch_end":
            if core not in open_epoch:
                if core in initialized or not truncated:
                    err(f"event {i}: core {core} epoch_end "
                        f"{ev.get('epoch')} without an open epoch")
            elif open_epoch[core] != ev.get("epoch"):
                err(f"event {i}: core {core} epoch_end {ev.get('epoch')} "
                    f"!= open epoch {open_epoch[core]}")
            open_epoch.pop(core, None)
        elif t == "pred":
            if core not in open_epoch:
                if core in initialized or not truncated:
                    err(f"event {i}: core {core} pred outside any epoch")
            elif ev.get("epoch") != open_epoch[core]:
                err(f"event {i}: core {core} pred references epoch "
                    f"{ev.get('epoch')}, live epoch is {open_epoch[core]}")
    for core, seq in sorted(open_epoch.items()):
        err(f"core {core}: epoch {seq} never ended")
    return errors
