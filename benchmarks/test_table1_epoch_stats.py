"""Bench: regenerate Table 1 (sync-epoch statistics)."""

from benchmarks.conftest import run_once
from repro.experiments import table1_epoch_stats as table1


def test_table1_epoch_stats(benchmark, cache):
    table = run_once(benchmark, lambda: table1.run(cache))
    print("\n" + table.render())

    by_name = {row["benchmark"]: row for row in table.rows}
    assert len(by_name) == 17

    # Static call-site counts follow the paper's Table 1 exactly.
    assert by_name["fmm"]["spec_crit_sites"] == 30
    assert by_name["radiosity"]["spec_crit_sites"] == 34
    assert by_name["streamcluster"]["spec_crit_sites"] == 1
    assert by_name["water-sp"]["spec_static_epochs"] == 1
    assert by_name["cholesky"]["spec_static_epochs"] == 27

    # Dynamic ordering follows Table 1: heavily iterated apps replay
    # epochs far more than the barely-repeating ones.
    heavy = ("radiosity", "streamcluster", "fluidanimate")
    light = ("fft", "ferret", "x264")
    for h in heavy:
        for l in light:
            assert (
                by_name[h]["dyn_epochs_per_core"]
                > by_name[l]["dyn_epochs_per_core"]
            ), (h, l)
