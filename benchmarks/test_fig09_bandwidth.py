"""Bench: regenerate Figure 9 (additional bandwidth of SP-prediction)."""

from benchmarks.conftest import run_once
from repro.experiments import fig09_bandwidth as fig9


def test_fig09_bandwidth(benchmark, cache):
    table = run_once(benchmark, lambda: fig9.run(cache))
    print("\n" + table.render())

    avg = next(r for r in table.rows if r["benchmark"] == "average")
    # Paper shape: SP adds a modest overhead (paper: ~18%) ...
    assert 0.0 < avg["added_pct"] < 45.0

    for row in table.rows:
        if row["benchmark"] == "average":
            continue
        # ... far below what broadcasting would add, per benchmark.
        assert row["added_pct"] < row["broadcast_added_pct"], row["benchmark"]
        # The breakdown partitions the total overhead.
        total = row["from_noncomm_pct"] + row["from_comm_pct"]
        assert abs(total - row["added_pct"]) < 1e-6, row["benchmark"]

    # A visible share of the overhead comes from predicting
    # non-communicating misses (paper: ~70% of the overhead).
    noncomm = sum(
        r["from_noncomm_pct"] for r in table.rows if r["benchmark"] != "average"
    )
    comm = sum(
        r["from_comm_pct"] for r in table.rows if r["benchmark"] != "average"
    )
    assert noncomm > 0.1 * (noncomm + comm)
