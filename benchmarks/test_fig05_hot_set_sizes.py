"""Bench: regenerate Figure 5 (hot communication set size distribution)."""

from benchmarks.conftest import run_once
from repro.experiments import fig05_hot_set_sizes as fig5


def test_fig05_hot_set_sizes(benchmark, cache):
    table = run_once(benchmark, lambda: fig5.run(cache))
    print("\n" + table.render())

    avg = next(r for r in table.rows if r["benchmark"] == "average")
    # Paper: more than 78% of intervals have a hot set of <= 4 cores.
    assert avg["small(<=4)"] >= 0.70
    # Every benchmark should have some single-target epochs.
    singles = [r["1"] for r in table.rows if r["benchmark"] != "average"]
    assert sum(1 for s in singles if s > 0) >= 12
