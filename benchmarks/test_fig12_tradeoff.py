"""Bench: regenerate Figure 12 (predictor latency/bandwidth trade-off)."""

from benchmarks.conftest import run_once
from repro.experiments import fig12_tradeoff as fig12


def test_fig12_tradeoff(benchmark, cache):
    table = run_once(benchmark, lambda: fig12.run(cache))
    print("\n" + table.render())

    rows = {(r["benchmark"], r["predictor"]): r for r in table.rows}
    for bench in fig12.BENCHES:
        directory = rows[(bench, "Directory")]
        assert directory["indirection_pct"] == 100.0

        for kind in fig12.PREDICTORS:
            row = rows[(bench, kind)]
            # Every predictor cuts indirection below the directory anchor
            # and pays some bandwidth for it.
            assert row["indirection_pct"] < 100.0, (bench, kind)
            assert row["added_bw_pct"] >= 0.0, (bench, kind)

        # Paper shape: SP is comparable to the table-based predictors —
        # within striking distance of the better of ADDR/INST.
        sp = rows[(bench, "SP")]["indirection_pct"]
        best_table = min(
            rows[(bench, "ADDR")]["indirection_pct"],
            rows[(bench, "INST")]["indirection_pct"],
        )
        assert sp <= best_table + 35.0, bench

    # UNI is the weakest on average (paper: lowest accuracy).
    avg_ind = {
        kind: sum(rows[(b, kind)]["indirection_pct"] for b in fig12.BENCHES)
        / len(fig12.BENCHES)
        for kind in fig12.PREDICTORS
    }
    assert avg_ind["UNI"] >= min(avg_ind.values())
