"""Extension: the sensitivity analyses the paper alludes to.

Section 5.3: "It is generally possible for a larger cache size to
elevate the fraction of communicating misses for memory bound
applications, and hence increase the impact of the predictor ...
Sensitivity analysis of cache parameters and workload input sizes (not
reported in this work) have shown expected observations and trends."
This experiment reports those trends for the reproduction.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.cache.cache import CacheConfig
from repro.core.predictor import SPPredictor
from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.generator import BenchmarkSpec, EpochSpec, build_workload
from repro.workloads.patterns import PatternKind
from repro.workloads.suite import load_benchmark


def _machine(l2_kb: int) -> MachineConfig:
    return MachineConfig(
        l2=CacheConfig(size=l2_kb * 1024, assoc=8, line_size=64)
    )


def _memory_bound_workload(scale: float):
    """Stable sharing plus a 96 KB per-core private working set: the
    working set fits a 256 KB+ L2 but thrashes a 64 KB one."""
    spec = BenchmarkSpec(
        name="memory-bound",
        epochs=(
            EpochSpec(
                pattern=PatternKind.STABLE, consume_blocks=10,
                produce_blocks=10, private_blocks=2,
                private_working_set=1536, private_ws_accesses=192,
            ),
        ) * 2,
        iterations=40,
    )
    return build_workload(spec, scale=scale)


class TestCacheSizeSensitivity:
    def test_larger_cache_raises_comm_fraction(self, benchmark):
        scale = max(BENCH_SCALE, 0.4)
        workload = _memory_bound_workload(scale)

        def run():
            rows = {}
            for l2_kb in (64, 256, 1024):
                machine = _machine(l2_kb)
                base = simulate(workload, machine=machine)
                sp = simulate(
                    workload, machine=machine,
                    predictor=SPPredictor(machine.num_cores),
                )
                rows[l2_kb] = (base, sp)
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        ratios, gains = {}, {}
        for l2_kb, (base, sp) in rows.items():
            ratios[l2_kb] = base.comm_ratio
            gains[l2_kb] = 1 - sp.avg_miss_latency / base.avg_miss_latency
            print(f"L2 {l2_kb:>5d} KB: comm ratio {ratios[l2_kb]:.3f}, "
                  f"SP latency gain {gains[l2_kb]:+.1%}")
        # The paper's expected trend: bigger caches keep private data
        # resident, so the surviving misses are increasingly
        # communicating misses — and the predictor matters more.
        assert ratios[1024] > ratios[64]
        assert gains[1024] > gains[64] - 0.01


class TestInputScaleSensitivity:
    def test_more_iterations_improve_history_accuracy(self, benchmark):
        workload_name = "ocean"

        def run():
            rows = {}
            for scale in (0.2, 0.5, 1.0):
                w = load_benchmark(workload_name, scale=scale)
                machine = MachineConfig()
                rows[scale] = simulate(
                    w, machine=machine,
                    predictor=SPPredictor(machine.num_cores),
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        for scale, result in rows.items():
            print(f"scale {scale}: accuracy {result.accuracy:.3f} "
                  f"(ideal {result.ideal_accuracy:.3f})")
        # More dynamic instances amortize warm-up: accuracy improves
        # with input size and approaches (never exceeds) ideal.
        assert rows[1.0].accuracy > rows[0.2].accuracy
        for result in rows.values():
            assert result.accuracy <= result.ideal_accuracy + 1e-9
