"""Extension: validate the paper's low-congestion assumption.

Section 5.3 assumes the NoC "does not get severely congested" and
reports congestion stayed low for both the prediction-augmented
directory protocol and broadcast.  This experiment measures the offered
link load of every protocol on the most traffic-heavy workloads.
"""

from benchmarks.conftest import BENCH_SCALE
from repro.core.predictor import SPPredictor
from repro.noc.congestion import estimate_load
from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.suite import load_benchmark

MACHINE = MachineConfig()
BENCHES = ("streamcluster", "water-sp", "x264")


def test_no_protocol_congests_the_mesh(benchmark):
    scale = max(BENCH_SCALE, 0.4)

    def run():
        rows = {}
        for name in BENCHES:
            w = load_benchmark(name, scale=scale)
            rows[(name, "directory")] = simulate(w, machine=MACHINE)
            rows[(name, "sp")] = simulate(
                w, machine=MACHINE, predictor=SPPredictor(MACHINE.num_cores)
            )
            rows[(name, "broadcast")] = simulate(
                w, machine=MACHINE, protocol="broadcast"
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    mesh = MACHINE.mesh()
    print()
    for (name, proto), result in rows.items():
        est = estimate_load(result, mesh)
        print(f"{name:14s} {proto:10s} offered load {est.offered_load:.4f}")
        assert not est.congested, (name, proto)
        # Broadcast loads the mesh hardest but still stays uncongested.
    for name in BENCHES:
        d = estimate_load(rows[(name, "directory")], mesh).offered_load
        b = estimate_load(rows[(name, "broadcast")], mesh).offered_load
        assert b > d, name
