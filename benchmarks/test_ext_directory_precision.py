"""Extension: SP-prediction under limited-pointer directories.

The paper's baseline is a full-map directory — which is exactly what
lets it *verify* predicted sets.  This experiment sweeps directory
precision (full map vs Dir-4 vs Dir-1) and measures two effects:

* the baseline cost of imprecision (coarse entries broadcast
  invalidations, and memory must supply data the entry cannot route);
* how much of SP-prediction's latency benefit survives when coarse
  entries make predictions unverifiable.
"""

from benchmarks.conftest import BENCH_SCALE
from repro.core.predictor import SPPredictor
from repro.sim.engine import SimulationEngine
from repro.sim.machine import MachineConfig
from repro.workloads.suite import load_benchmark

MACHINE = MachineConfig()
BENCH = "water-ns"  # pairwise + lock sharing: pointer-friendly until tiny


def _run(workload, pointers, predictor=None):
    engine = SimulationEngine(
        workload, machine=MACHINE, predictor=predictor,
        directory_pointers=pointers,
    )
    result = engine.run()
    return engine, result


def test_directory_precision_sweep(benchmark):
    workload = load_benchmark(BENCH, scale=max(BENCH_SCALE, 0.4))

    def run():
        rows = {}
        for pointers in (None, 4, 1):
            _, base = _run(workload, pointers)
            engine, sp = _run(
                workload, pointers, SPPredictor(MACHINE.num_cores)
            )
            rows[pointers] = (base, sp, getattr(engine.directory,
                                                "overflows", 0))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    gains = {}
    for pointers, (base, sp, overflows) in rows.items():
        label = "full-map" if pointers is None else f"Dir-{pointers}"
        gains[pointers] = 1 - sp.avg_miss_latency / base.avg_miss_latency
        print(f"{label:9s} overflows {overflows:>7,}  "
              f"base {base.avg_miss_latency:6.1f}c  "
              f"SP gain {gains[pointers]:+.1%}  "
              f"base bytes {base.network.bytes_total:>12,}")

    full_base = rows[None][0]
    dir1_base = rows[1][0]
    # Imprecision costs the baseline bandwidth (broadcast invalidations).
    assert dir1_base.network.bytes_total > full_base.network.bytes_total
    # The full map never overflows; Dir-1 does.
    assert rows[None][2] == 0
    assert rows[1][2] > 0
    # SP still helps at every precision (reads always verify: the owner
    # pointer survives overflow).
    for pointers, gain in gains.items():
        assert gain > 0.02, pointers
    # But some of the write-side benefit is lost at Dir-1 relative to
    # the full map (unverifiable predictions keep their indirection).
    full_sp = rows[None][1]
    dir1_sp = rows[1][1]
    assert dir1_sp.indirection_ratio >= full_sp.indirection_ratio - 0.01
