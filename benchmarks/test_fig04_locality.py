"""Bench: regenerate Figure 4 (communication locality by granularity)."""

from benchmarks.conftest import run_once
from repro.experiments import fig04_locality as fig4


def test_fig04_locality(benchmark, cache):
    table = run_once(benchmark, lambda: fig4.run(cache))
    print("\n" + table.render())

    rows = {
        (r["benchmark"], r["granularity"]): r for r in table.rows
    }
    for bench in fig4.BENCHES:
        epoch = rows[(bench, "sync-epoch")]
        whole = rows[(bench, "single-interval")]
        # The paper's central claim: sync-epoch locality dominates the
        # whole-run view at every curve point.
        for k in ("top1", "top2", "top4", "top8"):
            assert epoch[k] >= whole[k] - 1e-9, (bench, k)
        # And epochs concentrate most communication on very few cores.
        assert epoch["top4"] > 0.8, bench
        # All curves converge to full coverage.
        assert epoch["top16"] > 0.999
