"""Bench: regenerate Figure 13 (finite predictor tables, suite averages)."""

from benchmarks.conftest import run_once
from repro.experiments import fig13_finite_tables as fig13


def test_fig13_finite_tables(benchmark, cache):
    table = run_once(benchmark, lambda: fig13.run(cache))
    print("\n" + table.render())

    cap_label = f"{fig13.CAP}-entry"
    rows = {(r["predictor"], r["tables"]): r for r in table.rows}

    # Paper shape: a proportional capacity cap hurts ADDR and INST
    # accuracy (more misses pay indirection, less bandwidth spent)...
    for kind in ("ADDR", "INST"):
        unlimited = rows[(kind, "unlimited")]
        capped = rows[(kind, cap_label)]
        assert capped["indirection_pct"] >= unlimited["indirection_pct"] - 0.5
        assert capped["added_bw_pct"] <= unlimited["added_bw_pct"] + 0.5
    # At least one of them degrades visibly.
    degradations = [
        rows[(kind, cap_label)]["indirection_pct"]
        - rows[(kind, "unlimited")]["indirection_pct"]
        for kind in ("ADDR", "INST")
    ]
    assert max(degradations) > 1.0

    # ... while SP and UNI are insensitive: their state is inherently
    # far below the cap.
    for kind in ("SP", "UNI"):
        unlimited = rows[(kind, "unlimited")]
        capped = rows[(kind, cap_label)]
        assert abs(
            capped["indirection_pct"] - unlimited["indirection_pct"]
        ) < 2.0, kind
