"""Bench: regenerate Figure 10 (normalized execution time)."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_execution_time as fig10


def test_fig10_execution_time(benchmark, cache):
    table = run_once(benchmark, lambda: fig10.run(cache))
    print("\n" + table.render())

    avg = next(r for r in table.rows if r["benchmark"] == "average")
    # Paper shape: SP improves execution time (paper: 7% on average) —
    # by less than it improves miss latency, since computation and
    # off-chip misses dilute the gain.
    assert avg["sp_predictor"] < 1.0
    assert avg["broadcast"] < avg["sp_predictor"]

    for row in table.rows:
        if row["benchmark"] == "average":
            continue
        # No benchmark regresses materially (barrier/lock timing noise
        # can move individual runs a little).
        assert row["sp_predictor"] <= 1.05, row["benchmark"]
