"""Bench: regenerate Figure 8 (normalized average miss latency)."""

from benchmarks.conftest import run_once
from repro.experiments import fig08_miss_latency as fig8


def test_fig08_miss_latency(benchmark, cache):
    table = run_once(benchmark, lambda: fig8.run(cache))
    print("\n" + table.render())

    avg = next(r for r in table.rows if r["benchmark"] == "average")
    # Paper shape: broadcast approximates the lower bound, SP sits
    # between it and the directory (paper: SP = 0.87x on average).
    assert avg["broadcast"] < avg["sp_predictor"] < 1.0
    assert avg["sp_predictor"] <= 0.97  # a real, visible gain

    for row in table.rows:
        if row["benchmark"] == "average":
            continue
        # SP never does worse than the baseline on miss latency.
        assert row["sp_predictor"] <= 1.01, row["benchmark"]
        # Broadcast is the latency reference everywhere.
        assert row["broadcast"] <= row["sp_predictor"] + 0.02, row["benchmark"]

    # Apps with little communication see marginal gains (paper: lu, radix).
    by_name = {r["benchmark"]: r for r in table.rows}
    assert by_name["lu"]["sp_predictor"] > by_name["x264"]["sp_predictor"]
    assert by_name["radix"]["sp_predictor"] > by_name["water-sp"]["sp_predictor"]
