"""Bench: regenerate Figure 7 (SP-prediction accuracy breakdown)."""

from benchmarks.conftest import run_once
from repro.experiments import fig07_accuracy as fig7


def test_fig07_accuracy(benchmark, cache):
    table = run_once(benchmark, lambda: fig7.run(cache))
    print("\n" + table.render())

    by_name = {row["benchmark"]: row for row in table.rows}
    avg = by_name["average"]["total"]

    # Paper shape: high average accuracy (paper: 77%)...
    assert avg >= 0.55
    # ... with x264 among the best...
    assert by_name["x264"]["total"] >= 0.80
    # ... and the random-sharing radiosity below average.
    assert by_name["radiosity"]["total"] < by_name["x264"]["total"]
    # Ideal (a-priori hot sets) dominates actual everywhere.
    for name, row in by_name.items():
        if name == "average":
            continue
        assert row["ideal"] >= row["total"] - 1e-9, name
    assert by_name["average"]["ideal"] >= 0.9

    # History-based prediction carries real weight on repetitive apps.
    assert by_name["streamcluster"]["when_hist"] > 0.3
    # Lock-heavy apps gain from the lock-holder policy.
    assert by_name["water-ns"]["when_lock"] > 0.1
    assert by_name["fluidanimate"]["when_lock"] > 0.05
