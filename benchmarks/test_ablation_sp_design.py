"""Ablations of SP-predictor design choices the paper discusses.

* history depth (Section 4.4: "history depth should be at least as large
  as the repetition distance"),
* hot-set threshold and bounded hot-set size (Sections 3.3 / 5.2),
* hardware vs software SP-table cost (Section 4.6),
* region filtering of non-communicating predictions (Section 5.3).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.filters import FilteredPredictor
from repro.core.predictor import SPPredictor, SPPredictorConfig
from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.generator import BenchmarkSpec, EpochSpec, build_workload
from repro.workloads.patterns import PatternKind
from repro.workloads.suite import load_benchmark

MACHINE = MachineConfig()


def _sp(config=None, filtered=False):
    pred = SPPredictor(MACHINE.num_cores, config)
    return FilteredPredictor(pred) if filtered else pred


@pytest.fixture(scope="module")
def stride3_workload():
    """A workload whose epochs repeat with stride 3."""
    spec = BenchmarkSpec(
        name="stride3",
        epochs=(
            EpochSpec(pattern=PatternKind.STRIDE, stride=3,
                      consume_blocks=12, produce_blocks=12, private_blocks=4),
        ) * 2,
        iterations=24,
    )
    return build_workload(spec, scale=max(BENCH_SCALE, 0.4))


class TestHistoryDepthAblation:
    def test_depth_must_cover_stride(self, benchmark, stride3_workload):
        """d=3 catches the stride-3 pattern; d=2 cannot."""

        def run():
            results = {}
            for depth in (1, 2, 3):
                cfg = SPPredictorConfig(history_depth=depth)
                results[depth] = simulate(
                    stride3_workload, machine=MACHINE, predictor=_sp(cfg)
                )
            return results

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        acc = {d: r.accuracy for d, r in results.items()}
        print(f"\naccuracy by history depth: "
              + ", ".join(f"d={d}: {a:.3f}" for d, a in sorted(acc.items())))
        # Depth 3 sees the stride-3 repetition that depth 2 misses.
        assert acc[3] > acc[2] + 0.1
        assert acc[3] > acc[1]


class TestRegionFilterAblation:
    def test_filter_cuts_wasted_bandwidth(self, benchmark):
        """Section 5.3: most prediction overhead comes from
        non-communicating misses and can be filtered away."""
        workload = load_benchmark("lu", scale=max(BENCH_SCALE, 0.4))

        def run():
            base = simulate(workload, machine=MACHINE)
            plain = simulate(workload, machine=MACHINE, predictor=_sp())
            filtered = simulate(
                workload, machine=MACHINE, predictor=_sp(filtered=True)
            )
            return base, plain, filtered

        base, plain, filtered = benchmark.pedantic(run, rounds=1, iterations=1)
        plain_overhead = plain.network.bytes_total - base.network.bytes_total
        filt_overhead = filtered.network.bytes_total - base.network.bytes_total
        print(f"\nbandwidth overhead: plain {plain_overhead:,} B, "
              f"filtered {filt_overhead:,} B "
              f"({1 - filt_overhead / plain_overhead:.0%} removed)")
        # The filter removes a large share of the overhead...
        assert filt_overhead < 0.6 * plain_overhead
        # ...without sacrificing correct predictions.
        assert filtered.pred_correct >= 0.85 * plain.pred_correct
        assert filtered.pred_on_noncomm < 0.3 * plain.pred_on_noncomm


class TestTableImplementationAblation:
    """Section 4.6's implementation-choice discussion, both directions:
    a software (OS-trap) SP-table is fine when sync-epochs are coarse,
    while fine-grain locking wants the hardware table ("a hardware
    implementation would generally be more appropriate if sync-epochs
    are short")."""

    @staticmethod
    def _run_pair(workload):
        hw = simulate(
            workload, machine=MACHINE,
            predictor=_sp(SPPredictorConfig(sync_access_latency=4)),
        )
        sw = simulate(
            workload, machine=MACHINE,
            predictor=_sp(SPPredictorConfig(sync_access_latency=300)),
        )
        return hw, sw

    def test_software_table_fine_vs_coarse_epochs(self, benchmark):
        coarse_spec = BenchmarkSpec(
            name="coarse-epochs",
            epochs=(
                EpochSpec(pattern=PatternKind.STABLE, consume_blocks=24,
                          produce_blocks=24, private_blocks=8, think=6000),
            ) * 2,
            iterations=12,
        )
        coarse = build_workload(coarse_spec, scale=max(BENCH_SCALE, 0.4))
        fine = load_benchmark("water-ns", scale=max(BENCH_SCALE, 0.4))

        def run():
            return self._run_pair(coarse), self._run_pair(fine)

        (c_hw, c_sw), (f_hw, f_sw) = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        coarse_slowdown = c_sw.cycles / c_hw.cycles
        fine_slowdown = f_sw.cycles / f_hw.cycles
        print(f"\nsoftware-table slowdown: coarse epochs "
              f"{coarse_slowdown:.3f}x, fine-grain locking "
              f"{fine_slowdown:.3f}x")
        # Coarse epochs absorb the software-table cost...
        assert 1.0 <= coarse_slowdown < 1.10
        # ...fine-grain locking visibly cannot (hardware's niche).
        assert fine_slowdown > coarse_slowdown


class TestHotSetPolicyAblation:
    def test_threshold_trades_bandwidth_for_accuracy(self, benchmark):
        """Lower thresholds admit more cores: higher accuracy, more
        bandwidth (Section 5.2's tunable policy)."""
        workload = load_benchmark("bodytrack", scale=max(BENCH_SCALE, 0.4))

        def run():
            results = {}
            for threshold in (0.05, 0.10, 0.30):
                cfg = SPPredictorConfig(hot_threshold=threshold)
                results[threshold] = simulate(
                    workload, machine=MACHINE, predictor=_sp(cfg)
                )
            return results

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        sizes = {t: r.avg_predicted_targets for t, r in results.items()}
        acc = {t: r.accuracy for t, r in results.items()}
        print("\nthreshold -> predicted-set size / accuracy: "
              + ", ".join(f"{t}: {sizes[t]:.2f}/{acc[t]:.3f}"
                          for t in sorted(sizes)))
        # Looser thresholds produce bigger predicted sets...
        assert sizes[0.05] >= sizes[0.10] >= sizes[0.30]
        # ...and accuracy responds monotonically in the same direction.
        assert acc[0.05] >= acc[0.30]

    def test_bounded_hot_set_caps_bandwidth(self, benchmark):
        workload = load_benchmark("radiosity", scale=max(BENCH_SCALE, 0.4))

        def run():
            free = simulate(workload, machine=MACHINE, predictor=_sp())
            capped = simulate(
                workload, machine=MACHINE,
                predictor=_sp(SPPredictorConfig(max_hot_set_size=2)),
            )
            return free, capped

        free, capped = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\npredicted-set size: free {free.avg_predicted_targets:.2f}, "
              f"capped {capped.avg_predicted_targets:.2f}")
        assert capped.avg_predicted_targets <= free.avg_predicted_targets
        assert capped.avg_predicted_targets <= 2.0 + 1e-9
        assert capped.prediction_bytes() <= free.prediction_bytes()
