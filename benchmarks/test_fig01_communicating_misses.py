"""Bench: regenerate Figure 1 (ratio of communicating misses)."""

from benchmarks.conftest import run_once
from repro.experiments import fig01_communicating_misses as fig1


def test_fig01_communicating_misses(benchmark, cache):
    table = run_once(benchmark, lambda: fig1.run(cache))
    print("\n" + table.render())

    by_name = {row["benchmark"]: row for row in table.rows}
    avg = by_name["average"]["comm_ratio"]
    # Paper shape: a high overall average (paper: 62%) ...
    assert 0.40 <= avg <= 0.85
    # ... with wide per-application variation: lu and radix low,
    # x264 / water-sp / streamcluster high.
    assert by_name["lu"]["comm_ratio"] < avg
    assert by_name["radix"]["comm_ratio"] < avg
    assert by_name["x264"]["comm_ratio"] > avg
    assert by_name["water-sp"]["comm_ratio"] > avg
    spread = [r["comm_ratio"] for r in table.rows[:-1]]
    assert max(spread) - min(spread) > 0.3
