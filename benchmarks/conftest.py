"""Benchmark fixtures: one shared run cache for the whole session.

Every per-figure benchmark file pulls its simulation runs from this
cache, so the full ``pytest benchmarks/ --benchmark-only`` sweep costs
each (workload, protocol, predictor) combination exactly once.  Scale
defaults to 0.5 and can be overridden with REPRO_SCALE.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import RunCache
from repro.sim.machine import MachineConfig

BENCH_SCALE = float(os.environ.get("REPRO_SCALE", "0.5"))


@pytest.fixture(scope="session")
def cache() -> RunCache:
    return RunCache(machine=MachineConfig(), scale=BENCH_SCALE, verbose=False)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
