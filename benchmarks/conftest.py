"""Benchmark fixtures: one shared run cache for the whole session.

Every per-figure benchmark file pulls its simulation runs from this
cache, so the full ``pytest benchmarks/ --benchmark-only`` sweep costs
each (workload, protocol, predictor) combination at most once.  Scale
defaults to 0.5 and can be overridden with REPRO_SCALE.

The cache delegates to :mod:`repro.runner`: results persist on disk
between sessions (disable with ``REPRO_CACHE=0``), and when more than
one worker is available (``REPRO_JOBS``, default: all CPUs) the whole
figure grid is dispatched over a multiprocessing pool up front, so the
per-figure benchmarks mostly measure table assembly over warm runs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import EXPERIMENTS, required_configs
from repro.experiments.common import RunCache
from repro.sim.machine import MachineConfig

BENCH_SCALE = float(os.environ.get("REPRO_SCALE", "0.5"))


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Keep benchmark sweeps from appending to the user's run ledger."""
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))


@pytest.fixture(scope="session")
def cache() -> RunCache:
    run_cache = RunCache(
        machine=MachineConfig(), scale=BENCH_SCALE, verbose=False
    )
    if run_cache.runner.jobs > 1:
        run_cache.prefetch(
            required_configs(list(EXPERIMENTS), run_cache.suite())
        )
    return run_cache


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
