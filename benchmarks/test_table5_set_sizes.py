"""Bench: regenerate Table 5 (actual vs predicted target-set sizes)."""

from benchmarks.conftest import run_once
from repro.experiments import table5_set_sizes as table5


def test_table5_set_sizes(benchmark, cache):
    table = run_once(benchmark, lambda: table5.run(cache))
    print("\n" + table.render())

    for row in table.rows:
        # Reads dominate, and MESIF needs a single responder: the minimal
        # set stays close to 1 (paper: 1.00-1.58).
        assert 1.0 <= row["avg_actual"] <= 2.0, row["benchmark"]
        # The predicted set is a small multiple of the minimal set
        # (paper ratios: 1.13x-3.71x).
        assert row["avg_predicted"] >= 1.0, row["benchmark"]
        assert row["ratio"] <= 6.0, row["benchmark"]
    ratios = [r["ratio"] for r in table.rows]
    assert sum(ratios) / len(ratios) <= 4.0
