"""Ablations of the paper's discussion-section extensions.

* destination-set policy: group vs owner (footnote 4),
* profile-guided warm start (Section 5.2's off-line profiling idea),
* thread migration with and without the logical-ID mapping (Section 5.5).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.mapping import CoreMapping
from repro.core.predictor import SPPredictor
from repro.predictors.addr import AddrPredictor
from repro.sim.engine import SimulationEngine, simulate
from repro.sim.machine import MachineConfig
from repro.workloads.migration import migrate_threads
from repro.workloads.suite import load_benchmark

MACHINE = MachineConfig()
N = MACHINE.num_cores


class TestPolicyAblation:
    def test_owner_policy_saves_bandwidth(self, benchmark):
        """Owner predicts a single target: cheaper, usually no better."""
        workload = load_benchmark("fmm", scale=max(BENCH_SCALE, 0.4))

        def run():
            group = simulate(
                workload, machine=MACHINE,
                predictor=AddrPredictor(N, policy="group"),
            )
            owner = simulate(
                workload, machine=MACHINE,
                predictor=AddrPredictor(N, policy="owner"),
            )
            return group, owner

        group, owner = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\ngroup: acc {group.accuracy:.3f}, "
              f"{group.avg_predicted_targets:.2f} targets/req; "
              f"owner: acc {owner.accuracy:.3f}, "
              f"{owner.avg_predicted_targets:.2f} targets/req")
        assert owner.avg_predicted_targets < group.avg_predicted_targets
        assert owner.prediction_bytes() < group.prediction_bytes()


class TestProfileWarmStart:
    def test_warm_start_closes_gap_toward_ideal(self, benchmark):
        """Section 5.2: 'the gap may be bridged somewhat if off-line
        profiling offers initial prediction information.'"""
        workload = load_benchmark("ocean", scale=max(BENCH_SCALE, 0.4))

        def run():
            profiler = SPPredictor(N)
            cold = simulate(workload, machine=MACHINE, predictor=profiler)
            warm_pred = SPPredictor(N)
            warm_pred.preload_profile(profiler.export_profile())
            warm = simulate(workload, machine=MACHINE, predictor=warm_pred)
            return cold, warm

        cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\ncold accuracy {cold.accuracy:.3f}, "
              f"warm accuracy {warm.accuracy:.3f}, "
              f"ideal {cold.ideal_accuracy:.3f}")
        assert warm.accuracy > cold.accuracy
        assert warm.accuracy <= cold.ideal_accuracy + 0.02


class TestThreadMigration:
    def test_mapping_preserves_accuracy_across_migration(self, benchmark):
        """Section 5.5: signatures tracking logical IDs survive thread
        migration; physical-ID signatures go stale."""
        base = load_benchmark("facesim", scale=max(BENCH_SCALE, 0.4))
        rotation = [(i + 1) % N for i in range(N)]
        # Migrate mid-run (facesim has 3 barriers per iteration).
        n_barriers = sum(
            1 for ev in base.stream(0) if ev[0] == 2 and ev[1].value == "barrier"
        )
        split = n_barriers // 2
        migrated = migrate_threads(base, rotation, after_barrier=split)

        def run():
            unaware = SimulationEngine(
                migrated, machine=MACHINE, predictor=SPPredictor(N)
            ).run()
            aware = SimulationEngine(
                migrated, machine=MACHINE,
                predictor=SPPredictor(N, mapping=CoreMapping(N)),
                migrations={split: rotation},
            ).run()
            return unaware, aware

        unaware, aware = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nmigration accuracy: unaware {unaware.accuracy:.3f}, "
              f"mapping-aware {aware.accuracy:.3f}")
        # Both recover within a couple of instances (stale physical
        # signatures track where data still lives right after the move);
        # the mapping provides representational consistency, so it must
        # at least match the unaware predictor to within noise.
        assert aware.pred_correct >= 0.9 * unaware.pred_correct
        assert aware.accuracy > 0.4
