"""Bench: regenerate Figure 11 (NoC + snoop energy, normalized)."""

from benchmarks.conftest import run_once
from repro.experiments import fig11_energy as fig11


def test_fig11_energy(benchmark, cache):
    table = run_once(benchmark, lambda: fig11.run(cache))
    print("\n" + table.render())

    avg = next(r for r in table.rows if r["benchmark"] == "average")
    # Paper shape: SP costs moderately more energy than the directory
    # (paper: 1.25x) while broadcast costs multiples (paper: 2.4x).
    assert 1.0 < avg["sp_predictor"] < 1.8
    assert avg["broadcast"] > 1.8
    assert avg["broadcast"] > avg["sp_predictor"]

    for row in table.rows:
        if row["benchmark"] == "average":
            continue
        assert row["broadcast"] > row["sp_predictor"], row["benchmark"]
