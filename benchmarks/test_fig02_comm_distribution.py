"""Bench: regenerate Figure 2 (core-0 communication distribution)."""

from benchmarks.conftest import run_once
from repro.experiments import fig02_comm_distribution as fig2


def _concentration(row, num_cores=16):
    """Fraction of a row's volume drawn by its single hottest target."""
    volumes = [row.get(f"c{i}", 0) or 0 for i in range(num_cores)]
    total = sum(volumes)
    return max(volumes) / total if total else 0.0


def test_fig02_comm_distribution(benchmark, cache):
    table = run_once(benchmark, lambda: fig2.run(cache))
    print("\n" + table.render())

    whole = [r for r in table.rows if r["view"].startswith("(a)")]
    epochs = [r for r in table.rows if r["view"].startswith("(b)")]
    instances = [r for r in table.rows if r["view"].startswith("(c)")]
    assert len(whole) == 1
    assert len(epochs) >= 3
    assert len(instances) >= 2

    # Paper shape: per-epoch views concentrate on far fewer targets than
    # the whole-run view.
    whole_conc = _concentration(whole[0])
    epoch_conc = sum(_concentration(r) for r in epochs) / len(epochs)
    assert epoch_conc > whole_conc
