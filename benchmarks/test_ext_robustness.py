"""Extension: robustness of headline results.

Two checks a reviewer would ask for:

* seed robustness — the headline accuracy is a property of the sharing
  structure, not of one pseudo-random roll;
* topology sensitivity — on a torus (shorter average distance) the
  *relative* benefit of skipping indirection shrinks but survives.
"""

from benchmarks.conftest import BENCH_SCALE
from repro.core.predictor import SPPredictor
from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.suite import load_benchmark


class TestSeedRobustness:
    def test_accuracy_stable_across_seeds(self, benchmark):
        scale = max(BENCH_SCALE, 0.4)
        machine = MachineConfig()

        def run():
            out = {}
            for seed in (1, 7, 23):
                w = load_benchmark("radiosity", scale=scale, seed=seed)
                out[seed] = simulate(
                    w, machine=machine,
                    predictor=SPPredictor(machine.num_cores),
                )
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        accs = [r.accuracy for r in results.values()]
        print("\nradiosity accuracy by seed: "
              + ", ".join(f"{a:.3f}" for a in accs))
        assert max(accs) - min(accs) < 0.10
        comms = [r.comm_ratio for r in results.values()]
        assert max(comms) - min(comms) < 0.05


class TestTopologySensitivity:
    def test_torus_preserves_sp_benefit(self, benchmark):
        scale = max(BENCH_SCALE, 0.4)
        workload = load_benchmark("x264", scale=scale)

        def run():
            out = {}
            for topology in ("mesh", "torus"):
                machine = MachineConfig(topology=topology)
                base = simulate(workload, machine=machine)
                sp = simulate(
                    workload, machine=machine,
                    predictor=SPPredictor(machine.num_cores),
                )
                out[topology] = (base, sp)
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        gains = {}
        for topology, (base, sp) in results.items():
            gains[topology] = 1 - sp.avg_miss_latency / base.avg_miss_latency
            print(f"{topology:6s}: base {base.avg_miss_latency:.1f}c, "
                  f"SP {sp.avg_miss_latency:.1f}c "
                  f"(gain {gains[topology]:+.1%})")
        # Absolute latencies drop on the torus...
        assert (
            results["torus"][0].avg_miss_latency
            < results["mesh"][0].avg_miss_latency
        )
        # ...and SP still helps on both topologies.
        for topology in ("mesh", "torus"):
            assert gains[topology] > 0.05, topology
