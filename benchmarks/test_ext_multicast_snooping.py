"""Extension: prediction-guided multicast snooping.

The paper's introduction claims prediction can "relax the high bandwidth
requirements [of snooping] by replacing broadcast with multicast" but
only evaluates the directory use case.  This extension experiment
evaluates the snooping use case with the same SP-predictor.
"""

from benchmarks.conftest import BENCH_SCALE
from repro.core.predictor import SPPredictor
from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.suite import load_benchmark

MACHINE = MachineConfig()
BENCHES = ("x264", "water-ns", "bodytrack", "lu")


def test_multicast_relaxes_snooping_bandwidth(benchmark):
    scale = max(BENCH_SCALE, 0.4)

    def run():
        rows = {}
        for name in BENCHES:
            w = load_benchmark(name, scale=scale)
            bcast = simulate(w, machine=MACHINE, protocol="broadcast")
            mcast = simulate(
                w, machine=MACHINE, protocol="multicast",
                predictor=SPPredictor(MACHINE.num_cores),
            )
            rows[name] = (bcast, mcast)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, (bcast, mcast) in rows.items():
        saved = 1 - mcast.network.bytes_total / bcast.network.bytes_total
        snoops = 1 - mcast.snoop_lookups / bcast.snoop_lookups
        print(f"{name:12s} comm {bcast.comm_ratio:5.2f}  "
              f"bytes saved {saved:6.1%}  snoops saved {snoops:6.1%}  "
              f"latency ratio {mcast.avg_miss_latency / bcast.avg_miss_latency:.2f}")
        # The headline claim: multicast cuts snooping traffic and snoop
        # energy substantially.  The saving scales with the communicating
        # fraction — SP makes no prediction for most of a low-comm app's
        # misses (they warm up as d=0 epochs with empty hot sets), so
        # those stay broadcasts; and shifting phases (bodytrack) spend
        # savings on broadcast retries.
        expected = 0.12 if bcast.comm_ratio > 0.5 else 0.0
        assert saved > expected, name
        assert snoops > (0.25 if bcast.comm_ratio > 0.5 else 0.0), name
        # Mispredictions retry as broadcast, so latency degrades only
        # moderately relative to ideal broadcast snooping.
        assert mcast.avg_miss_latency < 1.6 * bcast.avg_miss_latency, name
