"""Bench: regenerate Figure 6 (hot-set patterns across dynamic instances)."""

from benchmarks.conftest import run_once
from repro.experiments import fig06_instance_patterns as fig6


def test_fig06_instance_patterns(benchmark, cache):
    table = run_once(benchmark, lambda: fig6.run(cache))
    print("\n" + table.render())

    suite = next(r for r in table.rows if r["benchmark"] == "suite")
    # All the paper's example behaviours must actually occur in the suite.
    assert suite["stable"] > 0
    assert suite["repetitive"] > 0
    assert suite["random"] > 0
    # Stable-dominated: most groups are predictable (the basis of the
    # paper's d=2 intersection policy).
    predictable = (
        suite["stable"] + suite["repetitive"] + suite["shifted-stable"]
        + suite["combined"]
    )
    assert predictable > suite["random"]

    # Concrete example sequences were extracted (Fig. 6's bit-vectors).
    example_notes = [n for n in table.notes if n.startswith("example")]
    assert len(example_notes) >= 3
