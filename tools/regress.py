#!/usr/bin/env python
"""The regression sentinel: probe sweep vs. committed baselines.

Runs a small deterministic probe sweep (two workloads x three
protocol/predictor cells at scale 0.05, serial, no caches) and compares
its metric payload against ``benchmarks/baselines.json`` with the
per-kind tolerance policy from :mod:`repro.obs.regress`: counters,
gauges, and histograms must match exactly (the simulator is
deterministic per ``CACHE_VERSION``), wall times — off by default
against a committed baseline, since they are host-specific — get a
relative tolerance when requested.

Exit code 0 means no drift; 1 means a metric regressed (the per-metric
table names it) or the baseline predates the current ``CACHE_VERSION``
and must be regenerated.

Usage::

    PYTHONPATH=src python tools/regress.py                 # gate
    PYTHONPATH=src python tools/regress.py --update        # new baseline
    PYTHONPATH=src python tools/regress.py --compare A B   # two payloads
    PYTHONPATH=src python tools/regress.py --json          # machine output
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import host_metadata  # noqa: E402
from repro.obs.regress import compare_runs  # noqa: E402
from repro.runner import CACHE_VERSION, RunSpec, SweepRunner  # noqa: E402

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / (
    "benchmarks/baselines.json"
)

#: The probe grid: small enough to finish in seconds, wide enough to
#: touch both protocols, the SP predictor, and two workload shapes.
PROBE_SCALE = 0.05
PROBE_GRID = (
    ("bodytrack", "directory", "none"),
    ("bodytrack", "directory", "SP"),
    ("bodytrack", "broadcast", "none"),
    ("lu", "directory", "none"),
    ("lu", "directory", "SP"),
    ("lu", "broadcast", "none"),
)


def probe_payload() -> dict:
    """Run the probe sweep; returns its schema-stamped metrics payload."""
    specs = [
        RunSpec(workload=w, scale=PROBE_SCALE, protocol=proto,
                predictor=pred)
        for w, proto, pred in PROBE_GRID
    ]
    runner = SweepRunner(jobs=1, disk=None, progress=False, ledger=False)
    runner.run_many(specs)
    return runner.metrics_payload()


def load_doc(token: str) -> dict | None:
    """A run doc from a JSON file path or a ledger run-id prefix."""
    path = Path(token)
    if path.exists():
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
    from repro.obs import LedgerError, RunLedger

    ledger = RunLedger.from_env()
    if ledger is None:
        print(f"error: {token!r} is not a file and the run ledger is "
              f"disabled", file=sys.stderr)
        return None
    try:
        return ledger.get(token)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="baseline file (default %(default)s)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="run the probe sweep and (re)write the baseline file",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("A", "B"), default=None,
        help="compare two payloads (files or ledger run ids) instead "
             "of probing; wall times compared with the default "
             "tolerance unless --wall-tolerance overrides it",
    )
    parser.add_argument(
        "--wall-tolerance", type=float, default=None, metavar="FRAC",
        help="also compare wall times, at this relative tolerance "
             "(default: skipped against a committed baseline — wall "
             "clocks are host-specific; counters are not)",
    )
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    args = parser.parse_args(argv)

    if args.compare:
        doc_a = load_doc(args.compare[0])
        if doc_a is None:
            return 1
        doc_b = load_doc(args.compare[1])
        if doc_b is None:
            return 1
        kw = {}
        if args.wall_tolerance is not None:
            kw["wall_tolerance"] = args.wall_tolerance
        report = compare_runs(doc_a, doc_b, **kw)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        return 0 if report.passed else 1

    baseline_path = Path(args.baseline)

    if args.update:
        payload = probe_payload()
        doc = {
            "cache_version": CACHE_VERSION,
            "probe": {
                "scale": PROBE_SCALE,
                "grid": [list(cell) for cell in PROBE_GRID],
            },
            "host": host_metadata(),
            "metrics": payload,
        }
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        with open(baseline_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline: {len(payload['cells'])} probe cells "
              f"(cache_version {CACHE_VERSION}) -> {baseline_path}")
        return 0

    if not baseline_path.exists():
        print(f"error: no baseline at {baseline_path}; create one with "
              f"tools/regress.py --update", file=sys.stderr)
        return 1
    with open(baseline_path) as fh:
        baseline = json.load(fh)

    if baseline.get("cache_version") != CACHE_VERSION:
        print(
            f"error: baseline was recorded at cache_version "
            f"{baseline.get('cache_version')!r} but the simulator is at "
            f"{CACHE_VERSION} — intentional behavior change; regenerate "
            f"with tools/regress.py --update", file=sys.stderr,
        )
        return 1

    current = probe_payload()
    report = compare_runs(
        baseline.get("metrics") or {},
        current,
        wall_tolerance=(
            args.wall_tolerance if args.wall_tolerance is not None
            else 0.25
        ),
        include_wall=args.wall_tolerance is not None,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render(show_ok=False))
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
