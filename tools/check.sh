#!/usr/bin/env bash
# Correctness gate: tier-1 tests, a differential equivalence pass over
# the quick grid, and a seeded fuzz batch.  Everything here is
# deterministic — a red run reproduces locally with the same commands.
#
# Usage: tools/check.sh [bench-out.json]
#
# Runtimes for each stage are merged into the JSON file given as $1
# (default BENCH_check.json) so CI history tracks harness cost.

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_OUT="${1:-BENCH_check.json}"
export PYTHONPATH=src

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== tier-1 without numpy (vector-engine fallback) =="
# The vectorized batch engine needs numpy; without it the simulator
# must degrade to the compiled path with one RuntimeWarning, never an
# ImportError.  An import-blocking stub package shadows any installed
# numpy and the whole tier-1 suite must still pass.
PYTHONPATH="tools/no_numpy_stub:src" python -m pytest -x -q

echo "== differential equivalence (quick grid) =="
python -m repro check diff --quick --bench "$BENCH_OUT"

echo "== engine-path equivalence (full suite) =="
# Every suite workload through all three engine loops — interpreted,
# compiled, vectorized (the quick grid above already runs the engine
# cells for its four workloads; this covers the other thirteen with a
# single lockstep reference cell each).
python -m repro check diff --protocols directory --predictors none \
    --bench "$BENCH_OUT" --bench-key diff_engine_full

echo "== seeded fuzz batch =="
FUZZ_DIR="$(mktemp -d)"
trap 'rm -rf "$FUZZ_DIR"' EXIT
python -m repro check fuzz --cases 8 --seed 1234 \
    --out-dir "$FUZZ_DIR" --bench "$BENCH_OUT"

echo "== ingest conformance (round trip + golden corpus) =="
# One suite workload through the SynchroTrace export -> re-ingest round
# trip on all three engine paths, plus the pinned golden corpus (valid
# traces must hit their recorded counters, malformed ones their exact
# one-line errors).  The full 17-workload certification runs in tier-1
# (tests/traces/test_ingest_roundtrip.py); this leg writes the
# conformance report CI uploads as an artifact.
python -m repro check ingest --workloads x264 --scale 0.05 --seed 7 \
    --corpus tests/data/synchrotrace \
    --report conformance-report.json --bench "$BENCH_OUT"

echo "== observability overhead gate =="
# Tracing off vs. on: counters must be bit-identical, the event stream
# must validate, and the disabled path must not run slower than the
# enabled one (the single falsy check is the only cost when off).
# The sweep stage additionally certifies the live telemetry + run
# ledger as non-perturbing and within the overhead budget, --spans
# extends the same contract to the span tracer + telemetry feed, and
# --forensics to the mispredict-attribution layer (bit-identical
# counters with attribution on/off, doc consistent with counters).
python -m repro obs overhead --workload lu --scale 0.1 --reps 5 \
    --spans --forensics --bench "$BENCH_OUT"

echo "== prediction forensics (taxonomy artifact) =="
# Every suite workload's mispredicts decomposed into the causal
# taxonomy: totals must match the counter-derived mispredict universe
# exactly and no workload may leave more than 10% unexplained
# ("other").  The taxonomy JSON uploads as a CI artifact.
python -m repro obs why --scale 0.1 --json forensics-report.json

echo "== distributed sweep tracing (feed + waterfall artifacts) =="
# A small two-worker sweep streaming its telemetry feed: the feed must
# pass strict validation (ordering, span/cell pairing, closed tail),
# and the span timeline exports as CI artifacts — the Perfetto trace
# with both sweep-process and simulator tracks, and the dashboard with
# the sweep waterfall panel.
SWEEP_FEED="sweep-feed.jsonl"
rm -f "$SWEEP_FEED"
python -m repro.experiments fig7 --scale 0.05 --jobs 2 --no-cache \
    --feed "$SWEEP_FEED" --quiet > /dev/null
python -m repro obs feed validate "$SWEEP_FEED" --strict-tail
python -m repro obs export --feed "$SWEEP_FEED" \
    -o sweep-spans-perfetto.json
python -m repro obs dashboard --feed "$SWEEP_FEED" \
    --out sweep-dashboard.html

echo "== vector default-quantum gate (contended suite) =="
# Cross-quantum window fusion and the shared-run fast path must keep
# the vectorized engine competitive at the *default* 400-cycle quantum
# (its historical weak spot): vector may not lose to the compiled loop
# by more than 5% on any contended-suite cell.  Interleaved min-of-3
# timing at scale 0.5 (below ~0.4, memo warm-up dominates the short
# traces and the gate would measure trace length, not steady state).
# The measured speedups merge into BENCH_sweep.json.
python tools/bench.py --default-quantum --reps 3 --out BENCH_sweep.json

echo "== regression sentinel (probe sweep vs. committed baselines) =="
# Counters must match benchmarks/baselines.json exactly; a red run is
# either a real regression or an intentional behavior change, in which
# case regenerate with `tools/regress.py --update` and commit the diff.
python tools/regress.py | tee regress-report.txt

echo "== check.sh: all gates green =="
