#!/usr/bin/env python3
"""Regenerate the regression snapshots in tests/data/.

Run after an *intentional* behaviour change (generator, protocol, or
predictor) so `tests/integration/test_snapshots.py` pins the new
behaviour:

    python tools/regenerate_snapshots.py
"""

import json
import pathlib
import sys

from repro.core.predictor import SPPredictor
from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.suite import SUITE, load_benchmark

SCALE = 0.4
OUT = pathlib.Path(__file__).parent.parent / "tests" / "data" / "snapshots_scale04.json"


def main() -> int:
    machine = MachineConfig()
    snapshots = {}
    for name in SUITE:
        print(f"simulating {name} ...", file=sys.stderr)
        workload = load_benchmark(name, scale=SCALE)
        base = simulate(workload, machine=machine)
        sp = simulate(
            workload, machine=machine,
            predictor=SPPredictor(machine.num_cores),
        )
        snapshots[name] = {
            "comm_ratio": round(base.comm_ratio, 4),
            "sp_accuracy": round(sp.accuracy, 4),
            "sp_latency_ratio": round(
                sp.avg_miss_latency / base.avg_miss_latency, 4
            ),
            "misses": base.misses,
        }
    payload = {"scale": SCALE, "benchmarks": snapshots}
    OUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
