#!/usr/bin/env python
"""Benchmark the sweep runner and the simulation hot path.

Times three things and writes them to ``BENCH_sweep.json`` so the
repository's performance trajectory is tracked from run to run:

* a canonical multi-workload sweep, serially in one process (the seed
  baseline's execution model: no pool, no persistent cache);
* the same sweep through the parallel runner, cold (fresh disk cache)
  and warm (second invocation over the populated cache — this is what a
  repeat ``python -m repro.experiments`` costs);
* one hot single run (bodytrack / directory / SP), with the full
  engine-side epoch bookkeeping and with the fast path
  (``ideal_metric=False``).

Usage::

    PYTHONPATH=src python tools/bench.py                  # full bench
    PYTHONPATH=src python tools/bench.py --scale 0.2      # quicker
    PYTHONPATH=src python tools/bench.py --smoke          # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.common import RunCache  # noqa: E402
from repro.runner import DiskCache, resolve_jobs  # noqa: E402
from repro.sim.engine import SimulationEngine  # noqa: E402
from repro.sim.machine import MachineConfig  # noqa: E402
from repro.workloads.suite import load_benchmark  # noqa: E402

#: The canonical sweep: enough configurations that pool dispatch and
#: cache round-trips dominate scheduling noise, small enough to finish
#: in minutes at the default scale.
SWEEP_WORKLOADS = ("bodytrack", "x264", "lu", "streamcluster")
SWEEP_CONFIGS = (
    {"protocol": "directory", "predictor": "none"},
    {"protocol": "directory", "predictor": "SP"},
    {"protocol": "broadcast", "predictor": "none"},
)

SMOKE_WORKLOADS = ("x264", "lu")

#: Wall-clock of the identical single run (bodytrack, scale 0.5,
#: directory protocol, SP predictor, full bookkeeping) measured at the
#: seed revision (913f5ac) on this host, before the engine hot-path
#: rework.  Kept as the fixed reference the speedup is reported
#: against; only meaningful at the default scale.
SEED_SINGLE_RUN_S = 2.122


def sweep_grid(workloads) -> list:
    return [
        {"name": name, **config}
        for name in workloads
        for config in SWEEP_CONFIGS
    ]


def time_sweep(grid, scale, jobs, disk) -> float:
    cache = RunCache(scale=scale, jobs=jobs, disk_cache=disk)
    start = time.perf_counter()
    cache.prefetch(grid)
    return time.perf_counter() - start


def time_single_run(scale, ideal_metric) -> float:
    workload = load_benchmark("bodytrack", scale=scale)
    machine = MachineConfig()
    engine = SimulationEngine(
        workload, machine=machine, protocol="directory", predictor="SP",
        ideal_metric=ideal_metric,
    )
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel sweep worker count (default: REPRO_JOBS or CPUs)",
    )
    parser.add_argument(
        "--out", default="BENCH_sweep.json", help="result file path"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration: scale 0.05, 2 workloads, 2 jobs",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = float(os.environ.get("REPRO_SCALE", "0.05"))
        workloads = SMOKE_WORKLOADS
        jobs = args.jobs or 2
    else:
        scale = args.scale
        workloads = SWEEP_WORKLOADS
        jobs = resolve_jobs(args.jobs)
    grid = sweep_grid(workloads)

    print(f"# sweep: {len(grid)} configurations at scale {scale}, "
          f"{jobs} jobs")

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        disk = DiskCache(Path(tmp) / "runs")

        print("serial baseline (1 process, no persistent cache) ...")
        serial_s = time_sweep(grid, scale, jobs=1, disk=False)
        print(f"  {serial_s:.2f}s")

        print(f"parallel cold ({jobs} jobs, fresh cache) ...")
        parallel_cold_s = time_sweep(grid, scale, jobs=jobs, disk=disk)
        print(f"  {parallel_cold_s:.2f}s")

        print("parallel warm (new process-equivalent, populated cache) ...")
        warm_s = time_sweep(grid, scale, jobs=jobs, disk=DiskCache(disk.root))
        print(f"  {warm_s:.2f}s")

    reps = 1 if args.smoke else 3
    print("single hot run (bodytrack / SP, full bookkeeping) ...")
    single_s = min(time_single_run(scale, True) for _ in range(reps))
    print(f"  {single_s:.2f}s")
    print("single hot run (fast path, ideal_metric off) ...")
    single_fast_s = min(time_single_run(scale, False) for _ in range(reps))
    print(f"  {single_fast_s:.2f}s")

    payload = {
        "scale": scale,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "grid": grid,
        "sweep": {
            "serial_cold_s": round(serial_s, 3),
            "parallel_cold_s": round(parallel_cold_s, 3),
            "parallel_warm_s": round(warm_s, 3),
            "speedup_parallel_cold": round(serial_s / parallel_cold_s, 2)
            if parallel_cold_s else None,
            "speedup_parallel_warm": round(serial_s / warm_s, 2)
            if warm_s else None,
        },
        "single_run": {
            "workload": "bodytrack",
            "predictor": "SP",
            "full_s": round(single_s, 3),
            "fast_path_s": round(single_fast_s, 3),
            "fast_path_speedup": round(single_s / single_fast_s, 2)
            if single_fast_s else None,
        },
    }
    if scale == 0.5 and not args.smoke:
        payload["single_run"]["seed_full_s"] = SEED_SINGLE_RUN_S
        payload["single_run"]["speedup_vs_seed"] = round(
            SEED_SINGLE_RUN_S / single_s, 2
        )
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
