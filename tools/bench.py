#!/usr/bin/env python
"""Benchmark the sweep runner, the simulation hot path, and the trace store.

Times seven things and writes them to ``BENCH_sweep.json`` so the
repository's performance trajectory is tracked from run to run:

* a canonical multi-workload sweep, serially in one process (the seed
  baseline's execution model: no pool, no persistent cache);
* the same sweep through the parallel runner, cold (fresh disk cache)
  and warm (second invocation over the populated cache — this is what a
  repeat ``python -m repro.experiments`` costs);
* one hot single run (bodytrack / directory / SP), on the compiled
  fast path (today's default), the event-by-event interpreter
  (``REPRO_COMPILED=0``), and with epoch bookkeeping off
  (``ideal_metric=False``) — workload built outside the timer, same
  protocol the seed number was measured with;
* one *cold* single run against a warm trace store — workload
  acquisition (mmap load) plus the engine run, what a fresh process
  pays for one simulation; the seed's equivalent regenerated the
  workload from its Python generators and interpreted it;
* the trace store itself: compile, column encode, save, mmap load, and
  tuple rehydration for one workload;
* the vectorized batch engine against the interpreted and compiled
  loops on the same cells: the hot suite run (contended; vector tracks
  compiled) and a batch-heavy private-stream synthetic at a coarse
  quantum (the vector path's target shape, reported with its
  batch-coverage fraction);
* the span tracer + telemetry feed: a fully instrumented serial sweep
  (spans, feed, progress, ledger) against all-off, interleaved — the
  overhead ratio joins the history rows so the ≤5% guarantee has a
  trajectory, not just a gate;
* prediction forensics: the same off-vs-on interleaved discipline for
  the mispredict-attribution layer — the off side must stay free (its
  ratio joins the history rows), the on side is allowed to pay for the
  per-event fallback it forces.

Each sweep gets its own fresh trace-store directory, so "cold" numbers
include trace compilation and stay reproducible regardless of what
``~/.cache/repro-traces`` happens to contain.

Usage::

    PYTHONPATH=src python tools/bench.py                  # full bench
    PYTHONPATH=src python tools/bench.py --scale 0.2      # quicker
    PYTHONPATH=src python tools/bench.py --smoke          # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.common import RunCache  # noqa: E402
from repro.obs import PhaseTimer, host_metadata, profile_call  # noqa: E402
from repro.runner import DiskCache, resolve_jobs  # noqa: E402
from repro.sim.engine import SimulationEngine  # noqa: E402
from repro.sim.machine import MachineConfig  # noqa: E402
from repro.traces import (  # noqa: E402
    compile_workload,
    ensure_compiled,
    load_benchmark_compiled,
    load_compiled,
    save_compiled,
)
from repro.workloads.suite import load_benchmark  # noqa: E402

#: The canonical sweep: enough configurations that pool dispatch and
#: cache round-trips dominate scheduling noise, small enough to finish
#: in minutes at the default scale.
SWEEP_WORKLOADS = ("bodytrack", "x264", "lu", "streamcluster")
SWEEP_CONFIGS = (
    {"protocol": "directory", "predictor": "none"},
    {"protocol": "directory", "predictor": "SP"},
    {"protocol": "broadcast", "predictor": "none"},
)

SMOKE_WORKLOADS = ("x264", "lu")

#: Wall-clock of the identical single run (bodytrack, scale 0.5,
#: directory protocol, SP predictor, full bookkeeping, workload built
#: outside the timer) measured at the seed revision (913f5ac) on this
#: host, before the engine hot-path rework and the compiled trace
#: store.  Kept as the fixed reference the speedup is reported against;
#: only meaningful at the default scale.
SEED_SINGLE_RUN_S = 2.122

#: Wall-clock of the *cold* single run — workload acquisition plus the
#: engine run, i.e. what a fresh process pays for one simulation — at
#: the seed revision (generate the workload from its Python generators,
#: then interpret it; best of 5 on this host).  Today the same run
#: mmap-loads the compiled trace from the warm store instead of
#: generating.  Only meaningful at the default scale.
SEED_COLD_RUN_S = 2.272


def sweep_grid(workloads) -> list:
    return [
        {"name": name, **config}
        for name in workloads
        for config in SWEEP_CONFIGS
    ]


def time_sweep(grid, scale, jobs, disk, trace_dir) -> float:
    """One sweep with its own trace-store directory (see module doc)."""
    os.environ["REPRO_TRACE_DIR"] = str(trace_dir)
    try:
        cache = RunCache(scale=scale, jobs=jobs, disk_cache=disk)
        start = time.perf_counter()
        cache.prefetch(grid)
        return time.perf_counter() - start
    finally:
        os.environ.pop("REPRO_TRACE_DIR", None)


def time_interleaved(cells, reps) -> dict:
    """Min-of-``reps`` per cell, cells round-robined inside each rep.

    Timing the cells back-to-back (all reps of A, then all of B) lets
    slow host drift — thermal throttling, a background compile, cgroup
    rebalancing — land entirely on whichever cell runs later, which is
    how a 1-CPU host once recorded the fast path "losing" to the
    interpreter it is strictly a subset of.  Interleaving hands every
    cell the same slice of every drift regime, and the per-cell minimum
    then compares like against like.
    """
    best = {}
    for _ in range(reps):
        for label, thunk in cells:
            elapsed = thunk()
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
    return best


def warn_fast_phases(pairs) -> list:
    """One warning line per "fast" cell that lost to its baseline.

    ``pairs`` is ``(label, fast_s, baseline_label, baseline_s)``.  A
    fast path losing is either measurement drift (rerun; the interleaved
    timers make this rare) or a real regression — both deserve a loud
    line and a ``warnings`` entry in the payload rather than a silently
    recorded inversion.
    """
    warnings = []
    for label, fast_s, base_label, base_s in pairs:
        if fast_s and base_s and fast_s > base_s:
            warnings.append(
                f"{label} ({fast_s:.3f}s) is slower than its baseline "
                f"{base_label} ({base_s:.3f}s)"
            )
    for line in warnings:
        print(f"WARNING: {line}", file=sys.stderr)
    return warnings


def time_single_run(
    workload, ideal_metric, use_compiled, use_vector=False,
    machine=None,
) -> float:
    """Engine run only — workload (and its compiled trace) pre-built.

    ``use_vector`` is passed explicitly (default off) so the compiled
    and interpreted cells keep measuring those loops even on hosts where
    numpy would auto-enable the vectorized batch engine.
    """
    engine = SimulationEngine(
        workload, machine=machine or MachineConfig(), protocol="directory",
        predictor="SP", ideal_metric=ideal_metric,
        use_compiled=use_compiled, use_vector=use_vector,
    )
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start


def batch_heavy_workload(iterations=12):
    """A private-stream synthetic: nearly every event is a cold
    sole-toucher touch inside one long PRIVATE run per epoch — the trace
    shape the vectorized engine exists for (suite workloads cap its gain
    via Amdahl; this cell isolates the batch kernel itself)."""
    from repro.workloads.generator import (
        BenchmarkSpec, EpochSpec, build_workload,
    )
    from repro.workloads.patterns import PatternKind

    spec = BenchmarkSpec(
        name="privstream",
        epochs=(EpochSpec(
            pattern=PatternKind.PRIVATE,
            consume_blocks=0,
            produce_blocks=0,
            private_blocks=400,
            rereads=0,
            think=0,
        ),),
        iterations=iterations,
    )
    return build_workload(spec, scale=1.0)


#: Scheduler quantum for the batch-heavy cell.  At the default fine
#: quantum (400 cycles) a scheduling turn admits only a handful of
#: private events, so per-turn dispatch dominates every path; a coarse
#: quantum lets whole private runs batch.  The quantum is an explicit
#: configuration knob (``MachineConfig.quantum``) and all three engine
#: paths are certified bit-identical at any given value.
BATCH_HEAVY_QUANTUM = 100_000


def time_vector_cells(hot_workload, reps, iterations=12) -> dict:
    """Interpreted vs compiled vs vectorized on the same cells.

    Two cells: the hot suite run (bodytrack/directory/SP, default
    quantum — contended, so vector ~ compiled) and the batch-heavy
    private-stream synthetic at a coarse quantum (the vectorized
    engine's target shape).
    """
    from repro.sim.engine import _QUANTUM

    section = {}
    default_machine = MachineConfig()
    cells = (
        ("hot", hot_workload, default_machine, _QUANTUM),
        (
            "batch_heavy",
            batch_heavy_workload(iterations),
            MachineConfig(quantum=BATCH_HEAVY_QUANTUM),
            BATCH_HEAVY_QUANTUM,
        ),
    )
    for label, workload, machine, quantum in cells:
        compiled = ensure_compiled(workload)
        coverage = compiled.batch_coverage()["vector_fraction"]
        times = time_interleaved(
            [
                (path, lambda kw=kw: time_single_run(
                    workload, True, machine=machine, **kw))
                for path, kw in (
                    ("interpreted", {"use_compiled": False}),
                    ("compiled", {"use_compiled": True}),
                    ("vector", {"use_compiled": True, "use_vector": True}),
                )
            ],
            reps,
        )
        section[label] = {
            "workload": workload.name,
            "predictor": "SP",
            "quantum": quantum,
            "vector_fraction": coverage,
            "interpreted_s": round(times["interpreted"], 3),
            "compiled_s": round(times["compiled"], 3),
            "vector_s": round(times["vector"], 3),
            "speedup_vs_compiled": round(
                times["compiled"] / times["vector"], 2
            ) if times["vector"] else None,
            "speedup_vs_interpreted": round(
                times["interpreted"] / times["vector"], 2
            ) if times["vector"] else None,
        }
        print(f"  {label}: interpreted {times['interpreted']:.2f}s, "
              f"compiled {times['compiled']:.2f}s, "
              f"vector {times['vector']:.2f}s "
              f"({section[label]['speedup_vs_compiled']}x vs compiled, "
              f"coverage {coverage})")
    return section


#: Vector may not lose to the compiled loop by more than this on any
#: default-quantum suite cell (the ``--default-quantum`` gate).
VECTOR_LOSS_TOLERANCE = 0.05

#: The default-quantum gate's measurement scale.  Below ~0.4 the traces
#: are short enough that the vector engine's one-time costs (transaction
#: memo warm-up, window construction) dominate and vector loses a few
#: percent on the contended cells; that is warm-up, not steady state,
#: and gating on it would only measure trace length.
DEFAULT_QUANTUM_SCALE = 0.5


def time_default_quantum_suite(scale, reps) -> dict:
    """Vector vs compiled on the contended suite at the *default* quantum.

    The vector engine's historical weak spot: a 400-cycle quantum admits
    only a handful of events per scheduling turn, so per-turn dispatch
    used to erase the batch gains.  Cross-quantum window fusion and the
    shared-run fast path are what make the vector path competitive here;
    this cell times all four suite workloads (directory / SP, default
    ``MachineConfig``), interleaved min-of-``reps``, and lists every
    cell where vector loses by more than :data:`VECTOR_LOSS_TOLERANCE`.
    """
    from repro.sim.engine import _QUANTUM

    machine = MachineConfig()
    section = {
        "scale": scale,
        "quantum": machine.quantum if machine.quantum is not None
        else _QUANTUM,
        "predictor": "SP",
        "protocol": "directory",
        "cells": {},
        "losses": [],
    }
    suite = {"compiled": 0.0, "vector": 0.0}
    for name in SWEEP_WORKLOADS:
        workload = load_benchmark(name, scale=scale)
        ensure_compiled(workload)

        def cells(w=workload):
            return [
                ("compiled", lambda: time_single_run(
                    w, True, use_compiled=True, machine=machine)),
                ("vector", lambda: time_single_run(
                    w, True, use_compiled=True, use_vector=True,
                    machine=machine)),
            ]

        times = time_interleaved(cells(), reps)

        def ratio(t):
            return t["compiled"] / t["vector"] if t["vector"] else None

        speedup = ratio(times)
        if speedup is not None and speedup < 1.0 - VECTOR_LOSS_TOLERANCE:
            # Confirm before failing: on cells whose true ratio sits
            # near parity the per-rep noise band is wider than the
            # tolerance, so one unlucky draw must not fail the gate.
            # A real regression loses the re-measure too.
            print(f"  {name}: vector behind at {speedup:.3f}x, "
                  f"re-measuring ...")
            retry = time_interleaved(cells(), reps + 2)
            times = {k: min(times[k], retry[k]) for k in times}
            speedup = ratio(times)
        section["cells"][name] = {
            "compiled_s": round(times["compiled"], 3),
            "vector_s": round(times["vector"], 3),
            "speedup": round(speedup, 3) if speedup else None,
        }
        suite["compiled"] += times["compiled"]
        suite["vector"] += times["vector"]
        print(f"  {name}: compiled {times['compiled']:.3f}s, "
              f"vector {times['vector']:.3f}s "
              f"({section['cells'][name]['speedup']}x)")
        if speedup is not None and speedup < 1.0 - VECTOR_LOSS_TOLERANCE:
            section["losses"].append(
                f"{name}: vector {times['vector']:.3f}s loses to compiled "
                f"{times['compiled']:.3f}s ({speedup:.3f}x, tolerance "
                f"{1.0 - VECTOR_LOSS_TOLERANCE:.2f}x, confirmed by "
                f"re-measure)"
            )
    section["suite_compiled_s"] = round(suite["compiled"], 3)
    section["suite_vector_s"] = round(suite["vector"], 3)
    section["suite_speedup"] = (
        round(suite["compiled"] / suite["vector"], 3)
        if suite["vector"] else None
    )
    print(f"  suite: compiled {section['suite_compiled_s']}s, "
          f"vector {section['suite_vector_s']}s "
          f"({section['suite_speedup']}x)")
    return section


def merge_section(out_path, section) -> None:
    """Fold the default-quantum section into an existing bench file.

    The standalone ``--default-quantum`` leg must not clobber a full
    bench payload, so it rewrites only its own subsection (creating a
    minimal file when none exists).
    """
    payload = {}
    if os.path.exists(out_path):
        try:
            with open(out_path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = {}
    payload.setdefault("vector", {})["default_quantum_suite"] = section
    host = host_metadata()
    payload.setdefault("history", []).append({
        "git_sha": host.get("git_sha"),
        "date": host.get("timestamp")
        or time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "vector_suite_speedup": section["suite_speedup"],
    })
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def time_cold_run(scale, trace_dir) -> float:
    """Workload acquisition + engine run against a warm trace store:
    what a fresh process pays for one simulation once the workload's
    compiled trace exists on disk."""
    os.environ["REPRO_TRACE_DIR"] = str(trace_dir)
    try:
        start = time.perf_counter()
        workload = load_benchmark_compiled("bodytrack", scale=scale)
        engine = SimulationEngine(
            workload, machine=MachineConfig(), protocol="directory",
            predictor="SP", use_compiled=True,
        )
        engine.run()
        return time.perf_counter() - start
    finally:
        os.environ.pop("REPRO_TRACE_DIR", None)


def time_trace_store(scale, tmp) -> dict:
    """Compile / encode / save / mmap-load / rehydrate one workload."""
    workload = load_benchmark("bodytrack", scale=scale)

    start = time.perf_counter()
    compiled = compile_workload(workload)
    compile_s = time.perf_counter() - start

    start = time.perf_counter()
    compiled.ensure_columns()
    encode_s = time.perf_counter() - start

    path = Path(tmp) / "bench.rtrace"
    start = time.perf_counter()
    save_compiled(compiled, path)
    save_s = time.perf_counter() - start

    start = time.perf_counter()
    loaded = load_compiled(path)
    load_s = time.perf_counter() - start

    start = time.perf_counter()
    for core in range(loaded.num_cores):
        loaded.events(core)
    rehydrate_s = time.perf_counter() - start

    return {
        "workload": "bodytrack",
        "events": compiled.total_events(),
        "file_bytes": path.stat().st_size,
        "compile_s": round(compile_s, 4),
        "encode_columns_s": round(encode_s, 4),
        "save_s": round(save_s, 4),
        "mmap_load_s": round(load_s, 4),
        "rehydrate_s": round(rehydrate_s, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel sweep worker count (default: REPRO_JOBS or CPUs)",
    )
    parser.add_argument(
        "--out", default="BENCH_sweep.json", help="result file path"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration: scale 0.05, 2 workloads, 2 jobs",
    )
    parser.add_argument(
        "--reps", type=int, default=5,
        help="single-run repetitions; the minimum is reported (default 5)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile one hot single run and record the hottest "
             "functions in the payload",
    )
    parser.add_argument(
        "--default-quantum", action="store_true",
        help="run only the default-quantum contended-suite leg "
             "(vector vs compiled, interleaved); merges the section "
             "into the output file and exits nonzero if vector loses "
             "to compiled by more than 5%% on any suite cell",
    )
    args = parser.parse_args(argv)

    if args.default_quantum:
        reps = max(1, min(args.reps, 3))
        scale = args.scale
        print(f"# default-quantum suite gate: scale {scale}, "
              f"min of {reps} interleaved reps")
        section = time_default_quantum_suite(scale, reps)
        merge_section(args.out, section)
        print(f"merged default_quantum_suite into {args.out}")
        if section["losses"]:
            for line in section["losses"]:
                print(f"GATE FAILED: {line}", file=sys.stderr)
            return 1
        return 0

    if args.smoke:
        scale = float(os.environ.get("REPRO_SCALE", "0.05"))
        workloads = SMOKE_WORKLOADS
        jobs = args.jobs or 2
    else:
        scale = args.scale
        workloads = SWEEP_WORKLOADS
        jobs = resolve_jobs(args.jobs)
    grid = sweep_grid(workloads)

    reps = 1 if args.smoke else max(1, args.reps)

    print(f"# sweep: {len(grid)} configurations at scale {scale}, "
          f"{jobs} jobs ({os.cpu_count()} CPUs)")

    timer = PhaseTimer()
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        disk = DiskCache(Path(tmp) / "runs")

        print("serial baseline (1 process, no persistent cache) ...")
        with timer.phase("sweep_serial"):
            serial_s = time_sweep(
                grid, scale, jobs=1, disk=False,
                trace_dir=Path(tmp) / "traces-serial",
            )
        print(f"  {serial_s:.2f}s")

        print(f"parallel cold ({jobs} jobs, fresh caches) ...")
        with timer.phase("sweep_parallel_cold"):
            parallel_cold_s = time_sweep(
                grid, scale, jobs=jobs, disk=disk,
                trace_dir=Path(tmp) / "traces-pool",
            )
        print(f"  {parallel_cold_s:.2f}s")

        print("parallel warm (new process-equivalent, populated cache) ...")
        with timer.phase("sweep_parallel_warm"):
            warm_s = time_sweep(
                grid, scale, jobs=jobs, disk=DiskCache(disk.root),
                trace_dir=Path(tmp) / "traces-pool",
            )
        print(f"  {warm_s:.2f}s")

        print("trace store (compile / save / mmap load) ...")
        with timer.phase("trace_store"):
            trace_store = time_trace_store(scale, tmp)
        print(f"  compile {trace_store['compile_s']:.3f}s, "
              f"save {trace_store['save_s']:.3f}s, "
              f"load {trace_store['mmap_load_s']:.3f}s")

        print("cold single run (load from warm trace store + simulate) ...")
        cold_dir = Path(tmp) / "traces-single"
        os.environ["REPRO_TRACE_DIR"] = str(cold_dir)
        try:
            load_benchmark_compiled("bodytrack", scale=scale)  # populate
        finally:
            os.environ.pop("REPRO_TRACE_DIR", None)
        with timer.phase("single_cold"):
            cold_s = min(time_cold_run(scale, cold_dir) for _ in range(reps))
        print(f"  {cold_s:.2f}s")

    workload = load_benchmark("bodytrack", scale=scale)
    ensure_compiled(workload)  # steady state: the store supplies this

    print("single hot runs (compiled / interpreted / fast-path, "
          "interleaved) ...")
    with timer.phase("single_runs"):
        single_best = time_interleaved(
            (
                ("hot", lambda: time_single_run(
                    workload, True, use_compiled=True)),
                ("interpreted", lambda: time_single_run(
                    workload, True, use_compiled=False)),
                ("fast_path", lambda: time_single_run(
                    workload, False, use_compiled=True)),
            ),
            reps,
        )
    single_s = single_best["hot"]
    interpreted_s = single_best["interpreted"]
    single_fast_s = single_best["fast_path"]
    print(f"  compiled {single_s:.2f}s, interpreted {interpreted_s:.2f}s, "
          f"fast-path {single_fast_s:.2f}s")

    print("vector engine (interpreted vs compiled vs vectorized) ...")
    with timer.phase("vector_engine"):
        vector_section = time_vector_cells(
            workload, reps, iterations=4 if args.smoke else 12
        )

    suite_section = None
    if not args.smoke:
        print("vector engine (default-quantum contended suite) ...")
        with timer.phase("vector_suite"):
            suite_section = time_default_quantum_suite(
                DEFAULT_QUANTUM_SCALE, reps=min(reps, 3)
            )
        vector_section["default_quantum_suite"] = suite_section

    print("span tracer + telemetry feed overhead (instrumented sweep) ...")
    from repro.cli import _span_overhead_stage
    with timer.phase("span_overhead"):
        span_section = _span_overhead_stage(
            "lu", 0.05 if args.smoke else 0.1, cells=3,
            reps=min(reps, 3),
        )

    print("prediction forensics overhead (attribution off vs. on) ...")
    from repro.cli import _forensics_overhead_stage
    with timer.phase("forensics_overhead"):
        forensics_section = _forensics_overhead_stage(
            "lu", 0.05 if args.smoke else 0.1, reps=min(reps, 3),
        )

    sweep = {
        "serial_cold_s": round(serial_s, 3),
        "parallel_cold_s": round(parallel_cold_s, 3),
        "parallel_warm_s": round(warm_s, 3),
        "speedup_parallel_warm": round(serial_s / warm_s, 2)
        if warm_s else None,
    }
    if jobs > 1:
        sweep["speedup_parallel_cold"] = (
            round(serial_s / parallel_cold_s, 2) if parallel_cold_s else None
        )
    else:
        # One worker is the serial path plus pool overhead; claiming a
        # parallel speedup from it would be noise dressed as a result.
        sweep["speedup_parallel_cold"] = None
        sweep["note"] = (
            "jobs_effective == 1 (single-CPU host): no parallel cold "
            "speedup is claimed"
        )

    payload = {
        "scale": scale,
        "jobs_requested": args.jobs,
        "jobs_effective": jobs,
        "cpu_count": os.cpu_count(),
        "host": host_metadata(),
        "phases": timer.breakdown(),
        "grid": grid,
        "sweep": sweep,
        "single_run": {
            "workload": "bodytrack",
            "predictor": "SP",
            "cold_s": round(cold_s, 3),
            "full_s": round(single_s, 3),
            "interpreted_s": round(interpreted_s, 3),
            "fast_path_s": round(single_fast_s, 3),
            "fast_path_speedup": round(single_s / single_fast_s, 2)
            if single_fast_s else None,
        },
        "trace_store": trace_store,
        "vector": vector_section,
        "span_overhead": span_section,
        "forensics_overhead": forensics_section,
    }
    fast_pairs = [
        ("single_run.full_s (compiled)", single_s,
         "single_run.interpreted_s", interpreted_s),
        ("single_run.fast_path_s", single_fast_s,
         "single_run.full_s", single_s),
    ]
    for label, cell in vector_section.items():
        if isinstance(cell, dict) and "vector_s" in cell:
            fast_pairs.append((
                f"vector.{label}.vector_s", cell["vector_s"],
                f"vector.{label}.compiled_s", cell["compiled_s"],
            ))
    warnings = warn_fast_phases(fast_pairs)
    if warnings:
        payload["warnings"] = warnings
    if scale == 0.5 and not args.smoke:
        payload["single_run"]["seed_full_s"] = SEED_SINGLE_RUN_S
        payload["single_run"]["speedup_vs_seed"] = round(
            SEED_SINGLE_RUN_S / single_s, 2
        )
        payload["single_run"]["seed_cold_s"] = SEED_COLD_RUN_S
        payload["single_run"]["cold_speedup_vs_seed"] = round(
            SEED_COLD_RUN_S / cold_s, 2
        )
    if args.profile:
        print("profiling one hot single run (cProfile) ...")
        _, stats_text, top = profile_call(
            time_single_run, workload, True, use_compiled=True
        )
        payload["profile"] = {"top_functions": top}
        print(stats_text)

    # Merge, don't overwrite: the latest payload replaces the top-level
    # sections, but the compact per-run history rows accumulate so the
    # file carries the performance trajectory, not just the last point.
    history = []
    if os.path.exists(args.out):
        try:
            with open(args.out) as fh:
                history = json.load(fh).get("history") or []
        except (OSError, ValueError):
            history = []
    row = {
        "git_sha": payload["host"].get("git_sha"),
        "date": payload["host"].get("timestamp")
        or time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "hot_run_s": payload["single_run"]["full_s"],
        "sweep_s": payload["sweep"]["parallel_cold_s"],
        "vector_hot_s": vector_section["hot"]["vector_s"],
        "vector_batch_speedup":
            vector_section["batch_heavy"]["speedup_vs_compiled"],
    }
    if suite_section is not None:
        row["vector_suite_speedup"] = suite_section["suite_speedup"]
    row["span_overhead_ratio"] = span_section["span_overhead_ratio"]
    row["forensics_overhead_ratio"] = (
        forensics_section["forensics_overhead_ratio"]
    )
    history.append(row)
    payload["history"] = history

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} ({len(history)} history rows)")

    from repro.obs.ledger import record_run

    run_id = record_run(
        "bench",
        phases=timer.breakdown(),
        label="smoke" if args.smoke else "full",
        extra={
            "scale": scale,
            "jobs": jobs,
            "sweep": payload["sweep"],
            "single_run": payload["single_run"],
        },
    )
    if run_id:
        print(f"[ledger: run {run_id}]")
    if suite_section is not None and suite_section["losses"]:
        for line in suite_section["losses"]:
            print(f"GATE FAILED: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
