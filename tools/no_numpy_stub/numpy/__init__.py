"""Import-blocking numpy stub for the no-numpy test leg.

Prepending ``tools/no_numpy_stub`` to ``PYTHONPATH`` makes this package
shadow any installed numpy, so ``import numpy`` raises ImportError — the
environment a user gets when installing ``repro`` without the ``fast``
extra.  The tier-1 suite must pass in full: the vectorized batch engine
degrades to the compiled interpreter with a single RuntimeWarning, and
nothing else in the package imports numpy at all.
"""

raise ImportError(
    "numpy is blocked by tools/no_numpy_stub (no-numpy test leg)"
)
