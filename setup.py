"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on this machine lacks
``bdist_wheel``; the legacy ``setup.py``-based editable path works
without it.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
