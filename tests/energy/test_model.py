"""Tests for the energy model."""

import pytest

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.noc.network import NetworkStats
from repro.sim.results import SimulationResult


def make_result(byte_links=0, byte_routers=0, snoops=0) -> SimulationResult:
    stats = NetworkStats(byte_links=byte_links, byte_routers=byte_routers)
    return SimulationResult(
        workload="w", protocol="directory", predictor="none", num_cores=16,
        network=stats, snoop_lookups=snoops,
    )


class TestEnergyModel:
    def test_router_costs_four_times_link(self):
        """The paper's assumption (Section 5.3)."""
        model = EnergyModel()
        assert model.router_per_byte == 4 * model.link_per_byte

    def test_breakdown_components(self):
        model = EnergyModel(link_per_byte=1, router_per_byte=4, snoop_lookup=40)
        e = model.of_run(make_result(byte_links=10, byte_routers=5, snoops=2))
        assert e.link == 10
        assert e.router == 20
        assert e.snoop == 80
        assert e.total == 110

    def test_energy_proportional_to_traffic(self):
        model = EnergyModel()
        small = model.of_run(make_result(byte_links=10, byte_routers=10)).total
        big = model.of_run(make_result(byte_links=20, byte_routers=20)).total
        assert big == pytest.approx(2 * small)

    def test_normalized_against_baseline(self):
        model = EnergyModel()
        base = make_result(byte_links=10, byte_routers=10, snoops=1)
        double = make_result(byte_links=20, byte_routers=20, snoops=2)
        assert model.normalized(double, base) == pytest.approx(2.0)
        assert model.normalized(base, base) == pytest.approx(1.0)

    def test_zero_baseline(self):
        model = EnergyModel()
        assert model.normalized(make_result(), make_result()) == 0.0

    def test_breakdown_is_value_object(self):
        assert EnergyBreakdown(1, 2, 3).total == 6
