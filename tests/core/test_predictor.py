"""Unit tests for the SP-predictor, driven without the simulator.

These exercise the event/action semantics of Tables 2 and 3 directly:
sync-points arrive via ``on_sync``, misses via ``predict``/``train`` with
fabricated transaction results.
"""

import pytest

from repro.coherence.protocol import MissKind, TransactionResult
from repro.core.predictor import SPPredictor, SPPredictorConfig
from repro.core.signatures import Signature
from repro.predictors.base import PredictionSource
from repro.sync.points import StaticSyncId, SyncKind

N = 16


def barrier(pc: int) -> StaticSyncId:
    return StaticSyncId(kind=SyncKind.BARRIER, pc=pc)


def lock(addr: int, pc: int = 0x900) -> StaticSyncId:
    return StaticSyncId(kind=SyncKind.LOCK, pc=pc, lock_addr=addr)


def unlock(addr: int, pc: int = 0x901) -> StaticSyncId:
    return StaticSyncId(kind=SyncKind.UNLOCK, pc=pc, lock_addr=addr)


def read_result(core: int, responder: int, *, predicted=None, correct=None):
    return TransactionResult(
        kind=MissKind.READ, core=core, block=0, communicating=True,
        off_chip=False, minimal_targets=frozenset({responder}),
        predicted=predicted, prediction_correct=correct,
        latency=10, indirection=predicted is None, responder=responder,
        invalidated=frozenset(),
    )


def write_result(core: int, invalidated, *, predicted=None, correct=None):
    return TransactionResult(
        kind=MissKind.WRITE, core=core, block=0, communicating=True,
        off_chip=False, minimal_targets=frozenset(invalidated),
        predicted=predicted, prediction_correct=correct,
        latency=10, indirection=predicted is None, responder=None,
        invalidated=frozenset(invalidated),
    )


def run_epoch(pred: SPPredictor, core: int, pc: int, responders) -> None:
    """One epoch: a sync-point followed by misses answered by ``responders``."""
    pred.on_sync(core, barrier(pc))
    for responder in responders:
        pred.predict(core, 0, 0, MissKind.READ)
        pred.train(core, 0, 0, MissKind.READ, read_result(core, responder))


class TestWarmupD0:
    def test_no_prediction_before_warmup(self):
        pred = SPPredictor(N, SPPredictorConfig(warmup_misses=5))
        pred.on_sync(0, barrier(1))
        assert pred.predict(0, 0, 0, MissKind.READ) is None

    def test_warmup_extracts_running_hot_set(self):
        pred = SPPredictor(N, SPPredictorConfig(warmup_misses=5))
        pred.on_sync(0, barrier(1))
        for _ in range(4):
            pred.predict(0, 0, 0, MissKind.READ)
            pred.train(0, 0, 0, MissKind.READ, read_result(0, 7))
        p = pred.predict(0, 0, 0, MissKind.READ)  # 5th miss: warmup ends
        assert p is not None
        assert p.targets == {7}
        assert p.source is PredictionSource.D0

    def test_warmup_with_no_communication_stays_silent(self):
        pred = SPPredictor(N, SPPredictorConfig(warmup_misses=2))
        pred.on_sync(0, barrier(1))
        pred.predict(0, 0, 0, MissKind.READ)
        assert pred.predict(0, 0, 0, MissKind.READ) is None


class TestHistoryPrediction:
    def test_second_instance_predicts_last_signature(self):
        pred = SPPredictor(N)
        run_epoch(pred, 0, pc=1, responders=[7] * 8)
        pred.on_sync(0, barrier(1))  # ends instance, begins instance 2
        p = pred.predict(0, 0, 0, MissKind.READ)
        assert p.targets == {7}
        assert p.source is PredictionSource.HISTORY

    def test_stable_pair_intersection(self):
        pred = SPPredictor(N)
        run_epoch(pred, 0, pc=1, responders=[7] * 6 + [3] * 6)
        run_epoch(pred, 0, pc=1, responders=[7] * 6 + [4] * 6)
        pred.on_sync(0, barrier(1))
        p = pred.predict(0, 0, 0, MissKind.READ)
        assert p.targets == {7}  # stable across both instances

    def test_alternating_pattern_predicts_two_back(self):
        pred = SPPredictor(N)
        run_epoch(pred, 0, pc=1, responders=[7] * 8)   # A
        run_epoch(pred, 0, pc=1, responders=[3] * 8)   # B
        run_epoch(pred, 0, pc=1, responders=[7] * 8)   # A -> alternation
        run_epoch(pred, 0, pc=1, responders=[3] * 8)   # B
        pred.on_sync(0, barrier(1))
        p = pred.predict(0, 0, 0, MissKind.READ)
        assert p.targets == {7}  # next in the A/B alternation

    def test_own_core_never_predicted(self):
        pred = SPPredictor(N)
        # Invalidation acks from core 0 itself must not appear.
        pred.on_sync(0, barrier(1))
        pred.train(0, 0, 0, MissKind.WRITE, write_result(0, {0, 5}))
        pred.train(0, 0, 0, MissKind.WRITE, write_result(0, {0, 5}))
        pred.on_sync(0, barrier(1))
        p = pred.predict(0, 0, 0, MissKind.READ)
        assert p is not None
        assert 0 not in p.targets

    def test_histories_are_per_core(self):
        pred = SPPredictor(N)
        run_epoch(pred, 0, pc=1, responders=[7] * 8)
        pred.on_sync(1, barrier(1))
        assert pred.predict(1, 0, 0, MissKind.READ) is None


class TestNoisyInstances:
    def test_noisy_instance_not_stored(self):
        cfg = SPPredictorConfig(noise_fraction=0.5, min_volume=2)
        pred = SPPredictor(N, cfg)
        run_epoch(pred, 0, pc=1, responders=[7] * 20)
        # Second instance: one lone miss (noise vs mean volume 20).
        run_epoch(pred, 0, pc=1, responders=[3])
        pred.on_sync(0, barrier(1))
        p = pred.predict(0, 0, 0, MissKind.READ)
        assert p.targets == {7}  # the noisy {3} instance was skipped

    def test_zero_volume_instance_not_stored(self):
        pred = SPPredictor(N)
        run_epoch(pred, 0, pc=1, responders=[7] * 10)
        run_epoch(pred, 0, pc=1, responders=[])
        pred.on_sync(0, barrier(1))
        entry = pred.table.probe(0, ("pc", 1))
        assert entry.history() == [Signature({7})]


class TestLockPrediction:
    def test_lock_predicts_previous_holders(self):
        pred = SPPredictor(N)
        pred.on_sync(3, lock(0x80))
        pred.on_sync(3, unlock(0x80))
        pred.on_sync(5, lock(0x80))
        p = pred.predict(5, 0, 0, MissKind.READ)
        assert p is not None
        assert p.targets == {3}
        assert p.source is PredictionSource.LOCK

    def test_lock_union_of_last_two_holders(self):
        pred = SPPredictor(N)
        for holder in (3, 9):
            pred.on_sync(holder, lock(0x80))
            pred.on_sync(holder, unlock(0x80))
        pred.on_sync(5, lock(0x80))
        p = pred.predict(5, 0, 0, MissKind.READ)
        assert p.targets == {3, 9}

    def test_first_lock_acquire_has_no_prediction(self):
        pred = SPPredictor(N)
        pred.on_sync(3, lock(0x80))
        assert pred.predict(3, 0, 0, MissKind.READ) is None

    def test_reacquiring_own_lock_excludes_self(self):
        pred = SPPredictor(N)
        pred.on_sync(3, lock(0x80))
        pred.on_sync(3, unlock(0x80))
        pred.on_sync(3, lock(0x80))
        p = pred.predict(3, 0, 0, MissKind.READ)
        assert p is None or 3 not in p.targets

    def test_locks_with_different_addresses_are_separate(self):
        pred = SPPredictor(N)
        pred.on_sync(3, lock(0x80))
        pred.on_sync(3, unlock(0x80))
        pred.on_sync(5, lock(0x81))
        assert pred.predict(5, 0, 0, MissKind.READ) is None


class TestRecovery:
    def test_recovery_after_confidence_exhaustion(self):
        cfg = SPPredictorConfig(confidence_bits=2)  # exhausts after 3 misses
        pred = SPPredictor(N, cfg)
        run_epoch(pred, 0, pc=1, responders=[7] * 8)
        pred.on_sync(0, barrier(1))
        # The stored signature {7} is now wrong: all traffic goes to 11.
        for _ in range(3):
            p = pred.predict(0, 0, 0, MissKind.READ)
            pred.train(
                0, 0, 0, MissKind.READ,
                read_result(0, 11, predicted=p.targets, correct=False),
            )
        assert pred.recoveries == 1
        p = pred.predict(0, 0, 0, MissKind.READ)
        assert p.targets == {11}
        assert p.source is PredictionSource.RECOVERY

    def test_correct_predictions_prevent_recovery(self):
        cfg = SPPredictorConfig(confidence_bits=2)
        pred = SPPredictor(N, cfg)
        run_epoch(pred, 0, pc=1, responders=[7] * 8)
        pred.on_sync(0, barrier(1))
        for _ in range(20):
            p = pred.predict(0, 0, 0, MissKind.READ)
            pred.train(
                0, 0, 0, MissKind.READ,
                read_result(0, 7, predicted=p.targets, correct=True),
            )
        assert pred.recoveries == 0

    def test_confidence_resets_each_epoch(self):
        cfg = SPPredictorConfig(confidence_bits=2)
        pred = SPPredictor(N, cfg)
        run_epoch(pred, 0, pc=1, responders=[7] * 8)
        pred.on_sync(0, barrier(1))
        for _ in range(2):  # not enough to exhaust
            p = pred.predict(0, 0, 0, MissKind.READ)
            pred.train(
                0, 0, 0, MissKind.READ,
                read_result(0, 11, predicted=p.targets, correct=False),
            )
        pred.on_sync(0, barrier(1))
        assert pred._cores[0].confidence.value == 3


class TestLifecycle:
    def test_on_finish_stores_trailing_epoch(self):
        pred = SPPredictor(N)
        run_epoch(pred, 0, pc=1, responders=[7] * 8)
        pred.on_finish(0)
        entry = pred.table.probe(0, ("pc", 1))
        assert entry.history() == [Signature({7})]

    def test_storage_bits_scales_with_entries(self):
        pred = SPPredictor(N)
        empty = pred.storage_bits(N)
        run_epoch(pred, 0, pc=1, responders=[7] * 8)
        pred.on_sync(0, barrier(2))
        assert pred.storage_bits(N) > empty

    def test_requires_two_cores(self):
        with pytest.raises(ValueError):
            SPPredictor(1)
