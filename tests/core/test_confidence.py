"""Tests for the saturating confidence counter."""

import pytest

from repro.core.confidence import ConfidenceCounter


class TestConfidenceCounter:
    def test_starts_fully_set(self):
        c = ConfidenceCounter(bits=4)
        assert c.value == 15
        assert not c.exhausted

    def test_saturates_high(self):
        c = ConfidenceCounter(bits=4)
        c.record(True)
        assert c.value == 15

    def test_decrements_on_incorrect(self):
        c = ConfidenceCounter(bits=4)
        c.record(False)
        assert c.value == 14

    def test_exhaustion_after_max_value_failures(self):
        c = ConfidenceCounter(bits=4)
        for _ in range(15):
            c.record(False)
        assert c.exhausted

    def test_saturates_low(self):
        c = ConfidenceCounter(bits=2)
        for _ in range(10):
            c.record(False)
        assert c.value == 0

    def test_recovers_with_correct_predictions(self):
        c = ConfidenceCounter(bits=4)
        for _ in range(15):
            c.record(False)
        c.record(True)
        assert not c.exhausted
        assert c.value == 1

    def test_reset_high(self):
        c = ConfidenceCounter(bits=4)
        for _ in range(15):
            c.record(False)
        c.reset_high()
        assert c.value == 15

    def test_explicit_initial_value(self):
        c = ConfidenceCounter(bits=4, value=3)
        assert c.value == 3

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ConfidenceCounter(bits=0)

    def test_invalid_initial_value(self):
        with pytest.raises(ValueError):
            ConfidenceCounter(bits=2, value=4)
