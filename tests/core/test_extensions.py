"""Tests for the design-extension knobs: longer histories, bounded hot
sets, profile warm start, and the software-table cost model."""

import pytest

from repro.coherence.protocol import MissKind
from repro.core.patterns import detect_period, predict_from_history
from repro.core.predictor import SPPredictor, SPPredictorConfig
from repro.core.signatures import Signature, extract_hot_set
from tests.core.test_predictor import barrier, run_epoch

N = 16
A, B, C = Signature({1}), Signature({2}), Signature({3})


class TestPeriodDetection:
    def test_stride2(self):
        assert detect_period([A, B], A) == 2

    def test_stride3_needs_depth3(self):
        assert detect_period([A, B, C], A) == 3
        assert detect_period([B, C], A) is None  # depth 2 cannot see it

    def test_stable_is_not_a_period(self):
        assert detect_period([A, A, A], A) is None

    def test_smallest_period_wins(self):
        # A B A B: newest A matches depth 2 before depth 4.
        assert detect_period([B, A, B], A) == 2

    def test_prediction_with_stride3(self):
        # History (oldest-first) [B, C, A]: stride-3 predicts B next.
        assert predict_from_history([B, C, A], period=3) == B

    def test_invalid_period_ignored(self):
        # Period larger than history falls back to the pair policy.
        assert predict_from_history([A, B], period=5) == B  # disjoint pair

    def test_deep_history_predictor_catches_stride3(self):
        """d >= 3 catches stride-3 (the paper's 'd >= 3 for the same
        example' requirement)."""
        cfg = SPPredictorConfig(history_depth=3)
        pred = SPPredictor(N, cfg)
        phases = [[1], [2], [3]] * 4  # stride-3 responder sequence
        for responders in phases:
            run_epoch(pred, 0, pc=1, responders=responders * 8)
        pred.on_sync(0, barrier(1))
        p = pred.predict(0, 0, 0, MissKind.READ)
        # 12 instances ended with responder 3; next phase is 1.
        assert p.targets == {1}

    def test_depth2_predictor_cannot_catch_stride3(self):
        cfg = SPPredictorConfig(history_depth=2)
        pred = SPPredictor(N, cfg)
        phases = [[1], [2], [3]] * 4
        for responders in phases:
            run_epoch(pred, 0, pc=1, responders=responders * 8)
        pred.on_sync(0, barrier(1))
        p = pred.predict(0, 0, 0, MissKind.READ)
        assert p.targets != {1}


class TestBoundedHotSet:
    def test_extract_caps_to_top_k(self):
        counts = [0, 50, 30, 20]
        assert extract_hot_set(counts, max_size=2) == {1, 2}
        assert extract_hot_set(counts, max_size=1) == {1}

    def test_cap_keeps_hottest(self):
        counts = [40, 10, 30, 20]
        assert extract_hot_set(counts, max_size=2) == {0, 2}

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            extract_hot_set([1, 2], max_size=0)

    def test_predictor_respects_cap(self):
        cfg = SPPredictorConfig(max_hot_set_size=1)
        pred = SPPredictor(N, cfg)
        run_epoch(pred, 0, pc=1, responders=[7] * 6 + [3] * 5)
        pred.on_sync(0, barrier(1))
        p = pred.predict(0, 0, 0, MissKind.READ)
        assert len(p.targets) == 1


class TestProfileWarmStart:
    def test_export_then_preload(self):
        pred = SPPredictor(N)
        run_epoch(pred, 0, pc=1, responders=[7] * 8)
        pred.on_sync(0, barrier(2))  # flush epoch 1 into the table
        profile = pred.export_profile()
        assert profile

        fresh = SPPredictor(N)
        loaded = fresh.preload_profile(profile)
        assert loaded == len(profile)
        # The very first instance of epoch 1 now predicts from history.
        fresh.on_sync(0, barrier(1))
        p = fresh.predict(0, 0, 0, MissKind.READ)
        assert p is not None
        assert p.targets == {7}

    def test_profile_json_round_trip(self):
        import json

        pred = SPPredictor(N)
        run_epoch(pred, 0, pc=1, responders=[7] * 8)
        pred.on_finish(0)
        profile = json.loads(json.dumps(pred.export_profile()))
        fresh = SPPredictor(N)
        assert fresh.preload_profile(profile) == len(profile)

    def test_warm_start_improves_first_run_accuracy(self, small_machine):
        from repro.sim.engine import simulate
        from repro.workloads.generator import build_workload
        from repro.workloads.patterns import PatternKind
        from tests.conftest import make_spec

        w = build_workload(
            make_spec(PatternKind.STABLE, epochs=2, iterations=4)
        )
        first = SPPredictor(N)
        cold = simulate(w, machine=small_machine, predictor=first)

        warm_pred = SPPredictor(N)
        warm_pred.preload_profile(first.export_profile())
        warm = simulate(w, machine=small_machine, predictor=warm_pred)
        assert warm.pred_correct > cold.pred_correct


class TestSyncAccessCost:
    def test_sync_latency_exposed(self):
        assert SPPredictor(N).sync_latency() == 4
        soft = SPPredictor(N, SPPredictorConfig(sync_access_latency=300))
        assert soft.sync_latency() == 300

    def test_software_table_cost_is_minor(self, small_machine):
        """Section 4.6's claim: the SP-table is accessed only at
        sync-points, so even a costly software implementation barely
        moves execution time."""
        from repro.sim.engine import simulate
        from repro.workloads.generator import build_workload
        from tests.conftest import make_spec

        w = build_workload(make_spec(iterations=6))
        hw = simulate(w, machine=small_machine, predictor=SPPredictor(N))
        sw = simulate(
            w, machine=small_machine,
            predictor=SPPredictor(
                N, SPPredictorConfig(sync_access_latency=300)
            ),
        )
        assert sw.cycles > hw.cycles          # the cost is modelled...
        assert sw.cycles < hw.cycles * 1.25   # ...but stays minor
