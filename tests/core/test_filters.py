"""Tests for the region filter and filtered predictor."""

from repro.coherence.protocol import MissKind
from repro.core.filters import FilteredPredictor, RegionFilter
from repro.core.predictor import SPPredictor
from repro.predictors.uni import UniPredictor
from repro.sync.points import StaticSyncId, SyncKind
from tests.core.test_predictor import read_result

N = 16


class TestRegionFilter:
    def test_first_toucher_owns_region(self):
        f = RegionFilter(blocks_per_region=4)
        f.note_access(3, 0)
        assert f.is_private(3, 0)
        assert not f.is_private(5, 0)

    def test_second_core_makes_region_shared(self):
        f = RegionFilter(blocks_per_region=4)
        f.note_access(3, 0)
        f.note_access(5, 1)  # same region
        assert not f.is_private(3, 0)
        assert not f.is_private(5, 0)
        assert f.shared_regions() == 1

    def test_region_granularity(self):
        f = RegionFilter(blocks_per_region=4)
        f.note_access(3, 0)
        f.note_access(5, 4)  # next region
        assert f.is_private(3, 0)
        assert f.is_private(5, 4)
        assert f.regions_tracked() == 2

    def test_sharing_is_permanent(self):
        f = RegionFilter(blocks_per_region=4)
        f.note_access(3, 0)
        f.note_access(5, 0)
        f.note_access(3, 0)
        assert not f.is_private(3, 0)

    def test_untouched_region_not_private(self):
        f = RegionFilter()
        assert not f.is_private(0, 99)


class TestFilteredPredictor:
    def test_private_region_suppresses_prediction(self):
        inner = UniPredictor(N)
        for _ in range(2):
            inner.train(0, 0, 0, MissKind.READ, read_result(0, 7))
        wrapped = FilteredPredictor(inner)
        # Block 100 has only ever been touched by core 0 -> no prediction.
        assert wrapped.predict(0, 100, 0, MissKind.READ) is None
        assert wrapped.filter.filtered == 1

    def test_shared_region_passes_through(self):
        inner = UniPredictor(N)
        for _ in range(2):
            inner.train(0, 0, 0, MissKind.READ, read_result(0, 7))
        wrapped = FilteredPredictor(inner)
        wrapped.filter.note_access(9, 100)  # another core touched it
        p = wrapped.predict(0, 100, 0, MissKind.READ)
        assert p is not None and p.targets == {7}

    def test_training_marks_remote_targets(self):
        wrapped = FilteredPredictor(UniPredictor(N))
        wrapped.train(0, 100, 0, MissKind.READ, read_result(0, 7))
        # The responder (core 7) held the block: the region is shared.
        assert not wrapped.filter.is_private(0, 100)

    def test_sync_and_finish_forwarded(self):
        inner = SPPredictor(N)
        wrapped = FilteredPredictor(inner)
        wrapped.on_sync(0, StaticSyncId(kind=SyncKind.BARRIER, pc=1))
        assert inner._cores[0].epoch_key == ("pc", 1)
        wrapped.on_finish(0)
        assert inner._cores[0].epoch_key is None

    def test_name_reflects_composition(self):
        assert FilteredPredictor(UniPredictor(N)).name == "UNI+RF"

    def test_end_to_end_reduces_wasted_predictions(self, small_machine):
        from repro.sim.engine import simulate
        from repro.workloads.generator import build_workload
        from repro.workloads.patterns import PatternKind
        from tests.conftest import make_spec

        spec = make_spec(PatternKind.STABLE, epochs=2, iterations=6,
                         private=20)
        w = build_workload(spec)
        plain = simulate(w, machine=small_machine, predictor=SPPredictor(N))
        filtered = simulate(
            w, machine=small_machine,
            predictor=FilteredPredictor(SPPredictor(N)),
        )
        assert filtered.pred_on_noncomm < plain.pred_on_noncomm
        assert filtered.network.bytes_total < plain.network.bytes_total
        # Accuracy on communicating misses is essentially preserved.
        assert filtered.pred_correct >= 0.9 * plain.pred_correct
