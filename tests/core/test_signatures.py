"""Tests for communication counters and hot-set extraction."""

import pytest

from repro.core.signatures import (
    CommunicationCounters,
    Signature,
    extract_hot_set,
    signature_bits,
)


class TestExtractHotSet:
    def test_threshold_includes_heavy_targets(self):
        counts = [0, 90, 10, 0]
        assert extract_hot_set(counts) == {1, 2}

    def test_threshold_excludes_light_targets(self):
        counts = [0, 95, 5, 0]
        assert extract_hot_set(counts) == {1}

    def test_exact_threshold_is_hot(self):
        counts = [0, 90, 10]
        assert 2 in extract_hot_set(counts, threshold=0.10)

    def test_empty_on_zero_volume(self):
        assert extract_hot_set([0, 0, 0]) == Signature()

    def test_self_core_excluded(self):
        counts = [50, 50]
        assert extract_hot_set(counts, self_core=0) == {1}

    def test_self_volume_not_in_denominator(self):
        # Without self-exclusion target 2 would fall under 10%.
        counts = [900, 0, 95, 5]
        assert extract_hot_set(counts, self_core=0) == {2}

    def test_dict_input(self):
        assert extract_hot_set({3: 10, 7: 90}) == {3, 7}

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            extract_hot_set([1], threshold=0.0)
        with pytest.raises(ValueError):
            extract_hot_set([1], threshold=1.5)

    def test_threshold_one_requires_total_domination(self):
        assert extract_hot_set([0, 100, 0], threshold=1.0) == {1}
        assert extract_hot_set([0, 99, 1], threshold=1.0) == Signature()


class TestSignatureBits:
    def test_bit_vector_rendering(self):
        assert signature_bits(Signature({0, 2}), 4) == "1010"
        assert signature_bits(Signature(), 3) == "000"


class TestCommunicationCounters:
    def test_record_response(self):
        cc = CommunicationCounters(num_cores=4, self_core=0)
        cc.record_response(2)
        cc.record_response(2)
        cc.record_response(3)
        assert cc.counts() == [0, 0, 2, 1]
        assert cc.volume == 3

    def test_self_responses_ignored(self):
        cc = CommunicationCounters(num_cores=4, self_core=1)
        cc.record_response(1)
        assert cc.volume == 0

    def test_invalidation_acks(self):
        cc = CommunicationCounters(num_cores=4, self_core=0)
        cc.record_invalidation_acks({1, 3})
        cc.record_invalidation_acks({1})
        assert cc.counts() == [0, 2, 0, 1]

    def test_reset(self):
        cc = CommunicationCounters(num_cores=4, self_core=0)
        cc.record_response(1)
        cc.reset()
        assert cc.volume == 0
        assert cc.counts() == [0, 0, 0, 0]

    def test_hot_set_uses_threshold(self):
        cc = CommunicationCounters(num_cores=4, self_core=0)
        for _ in range(95):
            cc.record_response(1)
        for _ in range(5):
            cc.record_response(2)
        assert cc.hot_set() == {1}
        assert cc.hot_set(threshold=0.05) == {1, 2}

    def test_self_core_validation(self):
        with pytest.raises(ValueError):
            CommunicationCounters(num_cores=4, self_core=4)
