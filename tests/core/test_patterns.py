"""Tests for history pattern policies (Table 3)."""

from repro.core.patterns import detect_alternation, predict_from_history, union_of
from repro.core.signatures import Signature

A = Signature({1, 2})
B = Signature({5})
C = Signature({7, 8})


class TestDetectAlternation:
    def test_aba_is_alternating(self):
        assert detect_alternation([A, B], A)

    def test_aaa_is_not(self):
        assert not detect_alternation([A, A], A)

    def test_abc_is_not(self):
        assert not detect_alternation([A, B], C)

    def test_abb_is_not(self):
        assert not detect_alternation([A, B], B)

    def test_too_short_history(self):
        assert not detect_alternation([A], A)
        assert not detect_alternation([], A)


class TestPredictFromHistory:
    def test_no_history_returns_none(self):
        assert predict_from_history([]) is None

    def test_single_signature_predicted_directly(self):
        assert predict_from_history([A]) == A

    def test_stable_pair_predicted(self):
        assert predict_from_history([A, A]) == A

    def test_differing_pair_intersected(self):
        x = Signature({1, 2, 3})
        y = Signature({2, 3, 4})
        assert predict_from_history([x, y]) == {2, 3}

    def test_disjoint_pair_falls_back_to_latest(self):
        assert predict_from_history([A, B]) == B

    def test_alternating_predicts_depth_two(self):
        assert predict_from_history([A, B], alternating=True) == A

    def test_alternating_flag_ignored_when_stable(self):
        assert predict_from_history([A, A], alternating=True) == A


class TestUnionOf:
    def test_union(self):
        assert union_of([A, B]) == {1, 2, 5}

    def test_empty(self):
        assert union_of([]) == Signature()
