"""Tests for the SP-table."""

import pytest

from repro.core.signatures import Signature
from repro.core.sp_table import SPTable, SPTableEntry

A = Signature({1})
B = Signature({2})
C = Signature({3})


class TestSPTableEntry:
    def test_history_bounded_by_depth(self):
        ent = SPTableEntry(depth=2)
        ent.push(A)
        ent.push(B)
        ent.push(C)
        assert ent.history() == [B, C]

    def test_alternating_flag_tracks_pattern(self):
        ent = SPTableEntry(depth=2)
        ent.push(A)
        ent.push(B)
        assert not ent.alternating
        ent.push(A)
        assert ent.alternating
        ent.push(B)
        assert ent.alternating
        ent.push(B)  # pattern broken
        assert not ent.alternating

    def test_mean_volume_running_average(self):
        ent = SPTableEntry(depth=2)
        ent.push(A, volume=10)
        ent.push(B, volume=30)
        assert ent.mean_volume == pytest.approx(20.0)
        assert ent.instances_recorded == 2


class TestSPTable:
    def test_private_entries_keyed_by_core(self):
        table = SPTable(depth=2)
        table.record(0, ("pc", 100), A)
        table.record(1, ("pc", 100), B)
        assert table.probe(0, ("pc", 100)).history() == [A]
        assert table.probe(1, ("pc", 100)).history() == [B]

    def test_lock_entries_shared_across_cores(self):
        table = SPTable(depth=2)
        table.record(0, ("lock", 0x80), A)
        entry = table.probe(7, ("lock", 0x80))
        assert entry is not None
        assert entry.history() == [A]

    def test_probe_without_allocation(self):
        table = SPTable(depth=2)
        assert table.probe(0, ("pc", 1)) is None
        assert len(table) == 0

    def test_lookup_and_update_counters(self):
        table = SPTable(depth=2)
        table.probe(0, ("pc", 1))
        table.record(0, ("pc", 1), A)
        assert table.lookups == 1
        assert table.updates == 1

    def test_capacity_cap_evicts_lru(self):
        table = SPTable(depth=2, max_entries=2)
        table.record(0, ("pc", 1), A)
        table.record(0, ("pc", 2), B)
        table.probe(0, ("pc", 1))       # refresh entry 1
        table.record(0, ("pc", 3), C)   # evicts entry 2
        assert table.probe(0, ("pc", 2)) is None
        assert table.probe(0, ("pc", 1)) is not None
        assert table.evictions == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            SPTable(depth=0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SPTable(depth=2, max_entries=0)

    def test_storage_bits_sizing(self):
        """Section 4.6: ~33 bits of signatures + tag per entry at 16 cores."""
        table = SPTable(depth=2)
        for pc in range(10):
            table.record(0, ("pc", pc), A)
        bits = table.storage_bits(num_cores=16, tag_bits=32)
        assert bits == 10 * (32 + 1 + 2 * 16)

    def test_capped_table_reports_capacity_storage(self):
        table = SPTable(depth=2, max_entries=512)
        assert table.storage_bits(num_cores=16) == 512 * (32 + 1 + 32)
