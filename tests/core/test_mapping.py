"""Tests for the logical/physical core mapping (thread migration)."""

import pytest

from repro.core.mapping import CoreMapping


class TestCoreMapping:
    def test_identity_initially(self):
        m = CoreMapping(4)
        assert m.is_identity()
        for i in range(4):
            assert m.physical_of(i) == i
            assert m.logical_of(i) == i

    def test_migrate_swaps_tenants(self):
        m = CoreMapping(4)
        m.migrate(0, 2)
        assert m.physical_of(0) == 2
        assert m.physical_of(2) == 0  # displaced thread took the old core
        assert m.logical_of(2) == 0
        assert m.logical_of(0) == 2
        assert m.migrations == 1

    def test_migrate_to_same_core_is_noop(self):
        m = CoreMapping(4)
        m.migrate(1, 1)
        assert m.is_identity()
        assert m.migrations == 0

    def test_mapping_stays_bijective(self):
        m = CoreMapping(8)
        for logical, physical in [(0, 5), (3, 2), (5, 0), (7, 7), (2, 5)]:
            m.migrate(logical, physical)
            assert sorted(m.physical_of(l) for l in range(8)) == list(range(8))
            for l in range(8):
                assert m.logical_of(m.physical_of(l)) == l

    def test_set_translation(self):
        m = CoreMapping(4)
        m.migrate(0, 3)
        assert m.to_physical({0, 1}) == {3, 1}
        assert m.to_logical({3, 1}) == {0, 1}

    def test_apply_permutation(self):
        m = CoreMapping(4)
        m.apply_permutation([1, 0, 3, 2])
        assert m.physical_of(0) == 1
        assert m.logical_of(1) == 0
        assert m.physical_of(2) == 3

    def test_apply_permutation_validates(self):
        m = CoreMapping(4)
        with pytest.raises(ValueError):
            m.apply_permutation([0, 0, 1, 2])

    def test_needs_positive_cores(self):
        with pytest.raises(ValueError):
            CoreMapping(0)


class TestSPPredictorWithMapping:
    def test_predictions_translate_after_migration(self):
        from repro.coherence.protocol import MissKind
        from repro.core.predictor import SPPredictor
        from tests.core.test_predictor import barrier, read_result, run_epoch

        mapping = CoreMapping(16)
        pred = SPPredictor(16, mapping=mapping)
        # Thread 0 learns that its epoch communicates with thread 7.
        run_epoch(pred, 0, pc=1, responders=[7] * 8)
        pred.on_sync(0, barrier(1))
        assert pred.predict(0, 0, 0, MissKind.READ).targets == {7}

        # Thread 7 migrates to physical core 12.
        mapping.migrate(7, 12)
        p = pred.predict(0, 0, 0, MissKind.READ)
        assert p.targets == {12}  # same logical signature, new placement

    def test_training_translates_physical_responders(self):
        from repro.coherence.protocol import MissKind
        from repro.core.predictor import SPPredictor
        from tests.core.test_predictor import barrier, read_result

        mapping = CoreMapping(16)
        mapping.migrate(7, 12)
        pred = SPPredictor(16, mapping=mapping)
        pred.on_sync(0, barrier(1))
        # Physical responder 12 is logical thread 7.
        for _ in range(8):
            pred.train(0, 0, 0, MissKind.READ, read_result(0, 12))
        pred.on_sync(0, barrier(1))
        entry = pred.table.probe(0, ("pc", 1))
        assert entry.history() == [frozenset({7})]

    def test_on_migrate_updates_mapping(self):
        from repro.core.predictor import SPPredictor

        mapping = CoreMapping(4)
        pred = SPPredictor(4, mapping=mapping)
        pred.on_migrate([1, 0, 2, 3])
        assert mapping.physical_of(0) == 1

    def test_on_migrate_without_mapping_is_noop(self):
        from repro.core.predictor import SPPredictor

        pred = SPPredictor(4)
        pred.on_migrate([1, 0, 2, 3])  # must not raise
