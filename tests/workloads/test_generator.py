"""Tests for the trace generator."""

import pytest

from repro.sync.points import SyncKind
from repro.workloads.base import OP_READ, OP_SYNC, OP_THINK, OP_WRITE
from repro.workloads.generator import (
    BenchmarkSpec,
    EpochSpec,
    LockSpec,
    build_workload,
)
from repro.workloads.patterns import PatternKind
from tests.conftest import make_spec


class TestBuildWorkload:
    def test_deterministic(self):
        spec = make_spec(PatternKind.RANDOM)
        a = build_workload(spec)
        b = build_workload(spec)
        assert a.events == b.events

    def test_scale_adjusts_iterations(self):
        spec = make_spec(iterations=10)
        small = build_workload(spec, scale=0.5)
        full = build_workload(spec, scale=1.0)
        assert small.total_events() < full.total_events()

    def test_scale_floor_of_two_iterations(self):
        spec = make_spec(iterations=10)
        tiny = build_workload(spec, scale=0.01)
        barriers = sum(
            1 for ev in tiny.stream(0)
            if ev[0] == OP_SYNC and ev[1] is SyncKind.BARRIER
        )
        assert barriers == 2 * len(spec.epochs)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_workload(make_spec(), scale=0)

    def test_all_cores_have_identical_barrier_sequences(self):
        w = build_workload(make_spec(epochs=3, iterations=4))
        seqs = [
            [ev[2] for ev in w.stream(c) if ev[0] == OP_SYNC
             and ev[1] is SyncKind.BARRIER]
            for c in range(w.num_cores)
        ]
        assert all(s == seqs[0] for s in seqs)

    def test_locks_are_balanced(self):
        w = build_workload(make_spec(PatternKind.PRIVATE, locks=2))
        for core in range(w.num_cores):
            locks = sum(
                1 for ev in w.stream(core)
                if ev[0] == OP_SYNC and ev[1] is SyncKind.LOCK
            )
            unlocks = sum(
                1 for ev in w.stream(core)
                if ev[0] == OP_SYNC and ev[1] is SyncKind.UNLOCK
            )
            assert locks == unlocks > 0

    def test_think_events_emitted(self):
        w = build_workload(make_spec())
        assert any(ev[0] == OP_THINK for ev in w.stream(0))

    def test_private_addresses_disjoint_across_cores(self):
        w = build_workload(make_spec(private=4))
        private = [set() for _ in range(w.num_cores)]
        for core in range(w.num_cores):
            for ev in w.stream(core):
                if ev[0] in (OP_READ, OP_WRITE) and ev[1] >= (1 << 30) * 64:
                    private[core].add(ev[1])
        for a in range(w.num_cores):
            for b in range(a + 1, w.num_cores):
                assert not (private[a] & private[b])

    def test_consumed_addresses_written_by_partner(self):
        """Stable pattern: everything core 0 reads from shared space was
        written by its partner in an earlier instance."""
        spec = make_spec(PatternKind.STABLE, epochs=1, iterations=4)
        w = build_workload(spec)
        partner_writes = set()
        for core in range(w.num_cores):
            for ev in w.stream(core):
                if ev[0] == OP_WRITE:
                    partner_writes.add(ev[1])
        # Skip the first (cold) iteration's reads.
        reads = [
            ev[1]
            for ev in w.stream(0)
            if ev[0] == OP_READ and ev[1] < (1 << 30) * 64
        ]
        later_reads = reads[len(reads) // 4:]
        assert all(addr in partner_writes for addr in later_reads)

    def test_noisy_instances_are_small(self):
        spec = make_spec(PatternKind.STABLE, epochs=1, iterations=6,
                         noisy_every=3)
        w = build_workload(spec)
        # Count accesses per epoch body for core 0.
        bodies = []
        count = 0
        for ev in w.stream(0):
            if ev[0] == OP_SYNC:
                bodies.append(count)
                count = 0
            elif ev[0] in (OP_READ, OP_WRITE):
                count += 1
        assert min(bodies) < max(bodies) / 4

    def test_static_counts_exposed(self):
        spec = BenchmarkSpec(
            name="x",
            epochs=(EpochSpec(pattern=PatternKind.STABLE),) * 3,
            locks=(LockSpec(n_sites=4), LockSpec(n_sites=2)),
        )
        assert spec.static_epoch_count() == 3
        assert spec.static_lock_sites() == 6
