"""Tests for multi-step migration schedules."""

import pytest

from repro.sim.engine import simulate
from repro.workloads.base import OP_SYNC
from repro.workloads.generator import build_workload
from repro.workloads.migration import apply_migration_schedule
from repro.workloads.patterns import PatternKind
from tests.conftest import make_spec

N = 16
REVERSAL = [N - 1 - i for i in range(N)]
ROTATION = [(i + 1) % N for i in range(N)]


class TestApplyMigrationSchedule:
    def test_empty_schedule_is_identity(self):
        w = build_workload(make_spec(epochs=1, iterations=4))
        out = apply_migration_schedule(w, [])
        assert out.events == w.events

    def test_two_reversals_cancel(self):
        """Reversal twice returns each thread to its original core, so
        the final segments land back where they started."""
        w = build_workload(make_spec(epochs=1, iterations=6))
        out = apply_migration_schedule(
            w, [(1, REVERSAL), (3, list(range(N)))]
        )
        # After the second entry the placement is identity again: the
        # last segment of core c's stream is thread c's.
        from repro.workloads.migration import split_at_barrier

        for core in range(N):
            cut = split_at_barrier(w.stream(core), 3)
            assert out.stream(core)[-5:] == w.stream(core)[-5:]

    def test_event_conservation_multi(self):
        w = build_workload(make_spec(epochs=2, iterations=6))
        out = apply_migration_schedule(
            w, [(2, REVERSAL), (5, ROTATION), (8, REVERSAL)]
        )
        assert out.total_events() == w.total_events()

    def test_duplicate_barriers_rejected(self):
        w = build_workload(make_spec(epochs=1, iterations=4))
        with pytest.raises(ValueError, match="duplicate"):
            apply_migration_schedule(w, [(1, REVERSAL), (1, ROTATION)])

    def test_invalid_placement_rejected(self):
        w = build_workload(make_spec(epochs=1, iterations=4))
        with pytest.raises(ValueError, match="permutation"):
            apply_migration_schedule(w, [(1, [0] * N)])

    def test_unsorted_schedule_accepted(self):
        w = build_workload(make_spec(epochs=1, iterations=6))
        a = apply_migration_schedule(w, [(3, ROTATION), (1, REVERSAL)])
        b = apply_migration_schedule(w, [(1, REVERSAL), (3, ROTATION)])
        assert a.events == b.events

    def test_multi_migration_simulates(self, small_machine):
        w = build_workload(
            make_spec(PatternKind.STABLE, epochs=2, iterations=8)
        )
        out = apply_migration_schedule(w, [(3, REVERSAL), (9, ROTATION)])
        r = simulate(out, machine=small_machine)
        assert r.cycles > 0
        assert r.accesses == w.memory_accesses()

    def test_barrier_counts_preserved(self):
        w = build_workload(make_spec(epochs=2, iterations=5))
        out = apply_migration_schedule(w, [(2, REVERSAL)])
        for core in range(N):
            orig = sum(1 for ev in w.stream(core) if ev[0] == OP_SYNC)
            new = sum(1 for ev in out.stream(core) if ev[0] == OP_SYNC)
            assert new == orig
