"""Tests for trace persistence."""

import io

import pytest

from repro.workloads.base import OP_READ, OP_SYNC, OP_THINK, OP_WRITE, Workload
from repro.workloads.generator import build_workload
from repro.workloads.patterns import PatternKind
from repro.workloads.trace import (
    TraceFormatError,
    dump_trace,
    load_trace,
    read_trace,
    write_trace,
)
from repro.sync.points import SyncKind
from tests.conftest import make_spec


class TestRoundTrip:
    def test_generated_workload_round_trips(self, tmp_path):
        original = build_workload(
            make_spec(PatternKind.STRIDE, locks=1, iterations=3)
        )
        path = tmp_path / "w.trace"
        dump_trace(original, path)
        loaded = load_trace(path)
        assert loaded.name == original.name
        assert loaded.num_cores == original.num_cores
        assert loaded.events == original.events

    def test_all_event_kinds_round_trip(self):
        streams = [[] for _ in range(2)]
        streams[0] = [
            (OP_READ, 0x1000, 0x400),
            (OP_WRITE, 0x2040, 0x404),
            (OP_THINK, 123),
            (OP_SYNC, SyncKind.BARRIER, 0x500, None),
            (OP_SYNC, SyncKind.LOCK, 0x510, 0x8000),
            (OP_SYNC, SyncKind.UNLOCK, 0x514, 0x8000),
        ]
        w = Workload(name="mini", num_cores=2, events=streams)
        buf = io.StringIO()
        write_trace(w, buf)
        buf.seek(0)
        loaded = read_trace(buf)
        assert loaded.events == w.events

    def test_simulation_of_loaded_trace_matches(self, tmp_path, small_machine):
        from repro.sim.engine import simulate

        original = build_workload(make_spec(iterations=3))
        path = tmp_path / "w.trace"
        dump_trace(original, path)
        loaded = load_trace(path)
        a = simulate(original, machine=small_machine)
        b = simulate(loaded, machine=small_machine)
        assert a.cycles == b.cycles
        assert a.miss_latency_sum == b.miss_latency_sum


class TestFormatErrors:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace(io.StringIO("garbage\n"))

    def test_bad_workload_line(self):
        with pytest.raises(TraceFormatError, match="workload"):
            read_trace(io.StringIO("# repro-trace v1\nnope\n"))

    def test_unknown_record(self):
        text = "# repro-trace v1\nworkload x cores 1\ncore 0\nz 1 2\n"
        with pytest.raises(TraceFormatError, match="unknown record"):
            read_trace(io.StringIO(text))

    def test_core_out_of_range(self):
        text = "# repro-trace v1\nworkload x cores 1\ncore 5\n"
        with pytest.raises(TraceFormatError, match="out of range"):
            read_trace(io.StringIO(text))

    def test_malformed_event(self):
        text = "# repro-trace v1\nworkload x cores 1\ncore 0\nr zz\n"
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO(text))

    def test_event_before_core_header(self):
        text = "# repro-trace v1\nworkload x cores 1\nr 0 0\n"
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO(text))
