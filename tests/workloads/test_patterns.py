"""Tests for sharing-pattern partner functions."""

from repro.workloads.patterns import PatternKind, partner_for

N = 16


def partners(pattern, core, instance, **kw):
    return partner_for(pattern, core, instance, N, **kw)


class TestPatternInvariants:
    def test_never_includes_self(self):
        for pattern in PatternKind:
            for core in range(N):
                for instance in range(10):
                    for p in partners(pattern, core, instance):
                        assert p != core

    def test_partners_in_range(self):
        for pattern in PatternKind:
            for core in range(N):
                for p in partners(pattern, core, 3):
                    assert 0 <= p < N

    def test_deterministic(self):
        for pattern in PatternKind:
            a = partners(pattern, 5, 7, seed=42)
            b = partners(pattern, 5, 7, seed=42)
            assert a == b


class TestSpecificPatterns:
    def test_private_has_no_partners(self):
        assert partners(PatternKind.PRIVATE, 0, 0) == []

    def test_stable_is_instance_invariant(self):
        sets = {tuple(partners(PatternKind.STABLE, 3, k)) for k in range(10)}
        assert len(sets) == 1

    def test_stride_cycles_with_period(self):
        seq = [tuple(partners(PatternKind.STRIDE, 3, k, stride=3)) for k in range(9)]
        assert seq[0] == seq[3] == seq[6]
        assert seq[1] == seq[4] == seq[7]
        assert len({seq[0], seq[1], seq[2]}) == 3

    def test_shifting_changes_phase(self):
        early = partners(PatternKind.SHIFTING, 3, 0, shift_every=4)
        late = partners(PatternKind.SHIFTING, 3, 4, shift_every=4)
        assert early != late

    def test_shifting_stable_within_phase(self):
        phase = [
            tuple(partners(PatternKind.SHIFTING, 3, k, shift_every=4))
            for k in range(4)
        ]
        assert len(set(phase)) == 1

    def test_neighbor_is_mesh_neighbor(self):
        # Core 5 at (1, 1): neighbour (2, 1) = 6.
        assert partners(PatternKind.NEIGHBOR, 5, 0) == [6]

    def test_random_varies_across_instances(self):
        seq = {tuple(partners(PatternKind.RANDOM, 3, k)) for k in range(20)}
        assert len(seq) > 3

    def test_reduction_leaves_point_at_root(self):
        for core in range(1, N):
            assert partners(PatternKind.REDUCTION, core, 5) == [0]

    def test_reduction_root_gathers(self):
        ps = partners(PatternKind.REDUCTION, 0, 5)
        assert len(ps) == 1 and ps[0] != 0

    def test_combined_contains_stable_core(self):
        stable = partners(PatternKind.COMBINED, 3, 0)[0]
        for k in range(10):
            assert stable in partners(PatternKind.COMBINED, 3, k)

    def test_two_core_machine(self):
        for pattern in PatternKind:
            if pattern is PatternKind.PRIVATE:
                continue
            for p in partner_for(pattern, 0, 1, 2):
                assert p == 1
