"""Tests for thread migration (workload transform + engine + mapping)."""

import pytest

from repro.core.mapping import CoreMapping
from repro.core.predictor import SPPredictor
from repro.sim.engine import SimulationEngine, simulate
from repro.workloads.base import OP_SYNC
from repro.workloads.generator import build_workload
from repro.workloads.migration import migrate_threads, split_at_barrier
from repro.workloads.patterns import PatternKind
from repro.sync.points import SyncKind
from tests.conftest import make_spec

#: Rotate every thread one core to the right.
ROTATION = [(i + 1) % 16 for i in range(16)]


class TestSplitAtBarrier:
    def test_split_index(self):
        w = build_workload(make_spec(epochs=1, iterations=3))
        stream = w.stream(0)
        idx = split_at_barrier(stream, 0)
        assert stream[idx - 1][0] == OP_SYNC
        assert stream[idx - 1][1] is SyncKind.BARRIER

    def test_too_few_barriers(self):
        w = build_workload(make_spec(epochs=1, iterations=2))
        with pytest.raises(ValueError, match="barriers"):
            split_at_barrier(w.stream(0), 99)


class TestMigrateThreads:
    def test_event_conservation(self):
        w = build_workload(make_spec(epochs=2, iterations=4))
        migrated = migrate_threads(w, ROTATION, after_barrier=3)
        assert migrated.total_events() == w.total_events()
        assert migrated.memory_accesses() == w.memory_accesses()

    def test_heads_stay_tails_move(self):
        w = build_workload(make_spec(epochs=1, iterations=4))
        migrated = migrate_threads(w, ROTATION, after_barrier=1)
        split0 = split_at_barrier(w.stream(0), 1)
        # Core 1's head is its own; its tail is thread 0's.
        split1 = split_at_barrier(w.stream(1), 1)
        assert migrated.stream(1)[:split1] == w.stream(1)[:split1]
        assert migrated.stream(1)[split1:] == w.stream(0)[split0:]

    def test_requires_permutation(self):
        w = build_workload(make_spec())
        with pytest.raises(ValueError, match="permutation"):
            migrate_threads(w, [0] * 16, after_barrier=1)

    def test_migrated_workload_simulates(self, small_machine):
        w = build_workload(make_spec(epochs=2, iterations=6))
        migrated = migrate_threads(w, ROTATION, after_barrier=5)
        r = simulate(migrated, machine=small_machine)
        assert r.cycles > 0
        assert r.accesses == w.memory_accesses()


class TestMappingAwarePredictionUnderMigration:
    def _run(self, workload, predictor, migrations=None, machine=None):
        engine = SimulationEngine(
            workload, machine=machine, predictor=predictor,
            migrations=migrations or {},
        )
        return engine.run()

    def test_mapping_aware_sp_survives_migration(self, small_machine):
        spec = make_spec(PatternKind.STABLE, epochs=2, iterations=12)
        w = build_workload(spec)
        barrier_idx = 12  # mid-run
        migrated = migrate_threads(w, ROTATION, after_barrier=barrier_idx)

        # Unaware predictor: signatures keep pointing at stale cores.
        unaware = self._run(
            migrated, SPPredictor(16), machine=small_machine,
        )
        # Mapping-aware predictor told about the migration.
        mapping = CoreMapping(16)
        aware = self._run(
            migrated, SPPredictor(16, mapping=mapping),
            migrations={barrier_idx: ROTATION}, machine=small_machine,
        )
        assert mapping.migrations == 1
        # Both schemes recover within a couple of instances (stale
        # physical signatures still point where the data physically
        # lives right after the move), so they land close to parity.
        assert aware.pred_correct >= 0.9 * unaware.pred_correct
        assert aware.accuracy > 0.3

    def test_no_migration_identical_with_identity_mapping(self, small_machine):
        spec = make_spec(PatternKind.STABLE, epochs=1, iterations=6)
        w = build_workload(spec)
        plain = self._run(w, SPPredictor(16), machine=small_machine)
        mapped = self._run(
            w, SPPredictor(16, mapping=CoreMapping(16)), machine=small_machine
        )
        assert plain.pred_correct == mapped.pred_correct
        assert plain.cycles == mapped.cycles
