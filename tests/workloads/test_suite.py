"""Tests for the 17-benchmark suite definitions."""

import pytest

from repro.workloads.suite import SUITE, benchmark_names, load_benchmark

#: Table 1 of the paper: (static critical sections, static sync-epochs).
TABLE1_STATIC = {
    "fmm": (30, 20),
    "lu": (7, 5),
    "ocean": (28, 20),
    "radiosity": (34, 12),
    "water-ns": (20, 8),
    "cholesky": (28, 27),
    "fft": (8, 8),
    "radix": (8, 4),
    "water-sp": (17, 1),
    "bodytrack": (16, 20),
    "fluidanimate": (11, 20),
    "streamcluster": (1, 24),
    "vips": (14, 8),
    "facesim": (2, 3),
    "ferret": (4, 6),
    "dedup": (3, 4),
    "x264": (2, 3),
}


class TestSuiteDefinitions:
    def test_all_seventeen_present(self):
        assert len(SUITE) == 17
        assert set(benchmark_names()) == set(TABLE1_STATIC)

    @pytest.mark.parametrize("name", sorted(TABLE1_STATIC))
    def test_static_counts_match_table1(self, name):
        spec = SUITE[name]
        crit, epochs = TABLE1_STATIC[name]
        assert spec.static_lock_sites() == crit
        assert spec.static_epoch_count() == epochs

    def test_all_are_sixteen_core(self):
        for spec in SUITE.values():
            assert spec.num_cores == 16

    def test_names_are_keys(self):
        for name, spec in SUITE.items():
            assert spec.name == name

    def test_comm_ratio_targets_recorded(self):
        for spec in SUITE.values():
            assert spec.target_comm_ratio is not None
            assert 0.0 < spec.target_comm_ratio < 1.0


class TestLoadBenchmark:
    def test_load_builds_trace(self):
        w = load_benchmark("x264", scale=0.1)
        assert w.name == "x264"
        assert w.num_cores == 16
        assert w.memory_accesses() > 0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_benchmark("nonexistent")

    @pytest.mark.parametrize("name", sorted(TABLE1_STATIC))
    def test_every_benchmark_builds(self, name):
        w = load_benchmark(name, scale=0.05)
        assert w.total_events() > 0
        assert w.sync_points() > 0
