"""Tests for the parallel-kernel building blocks."""

import pytest

from repro.core.predictor import SPPredictor
from repro.sim.engine import simulate
from repro.workloads.kernels import (
    KERNELS,
    all_reduce,
    ping_pong,
    pipeline,
    producer_consumer,
    stencil,
    task_queue,
)


class TestKernelRegistry:
    def test_all_kernels_registered(self):
        assert set(KERNELS) == {
            "producer-consumer", "stencil", "ping-pong", "all-reduce",
            "task-queue", "pipeline",
        }

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_every_kernel_builds_and_simulates(self, name, small_machine):
        w = KERNELS[name](iterations=4)
        result = simulate(w, machine=small_machine)
        assert result.accesses > 0
        assert result.cycles > 0


class TestKernelBehaviours:
    def test_producer_consumer_is_highly_predictable(self, small_machine):
        w = producer_consumer(iterations=10)
        r = simulate(w, machine=small_machine, predictor=SPPredictor(16))
        assert r.accuracy > 0.8

    def test_ping_pong_needs_alternation_detection(self, small_machine):
        from repro.core.predictor import SPPredictorConfig

        w = ping_pong(iterations=16, stride=2)
        with_alt = simulate(
            w, machine=small_machine,
            predictor=SPPredictor(16, SPPredictorConfig(history_depth=2)),
        )
        no_alt = simulate(
            w, machine=small_machine,
            predictor=SPPredictor(16, SPPredictorConfig(history_depth=1)),
        )
        assert with_alt.accuracy > no_alt.accuracy

    def test_stencil_communicates_with_neighbours(self, small_machine):
        w = stencil(iterations=6)
        r = simulate(w, machine=small_machine)
        assert r.comm_ratio > 0.5

    def test_task_queue_is_migratory(self, small_machine):
        w = task_queue(iterations=6)
        r = simulate(w, machine=small_machine, predictor=SPPredictor(16))
        # Lock-holder prediction carries the kernel.
        from repro.predictors.base import PredictionSource

        assert r.correct_by_source.get(PredictionSource.LOCK, 0) > 0

    def test_all_reduce_widens_hot_sets(self, small_machine):
        wide = simulate(all_reduce(iterations=6), machine=small_machine,
                        predictor=SPPredictor(16))
        narrow = simulate(producer_consumer(iterations=6),
                          machine=small_machine, predictor=SPPredictor(16))
        assert wide.avg_predicted_targets >= narrow.avg_predicted_targets - 0.5

    def test_pipeline_kernel_structured(self, small_machine):
        w = pipeline(iterations=6)
        r = simulate(w, machine=small_machine, predictor=SPPredictor(16))
        assert r.accuracy > 0.6

    def test_custom_core_counts(self):
        w = producer_consumer(iterations=3, num_cores=4)
        assert w.num_cores == 4
