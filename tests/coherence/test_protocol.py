"""Tests for the directory MESIF protocol and prediction overlay."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.directory import Directory
from repro.coherence.protocol import DirectoryProtocol, MissKind, ProtocolLatencies
from repro.coherence.states import Mesif
from repro.noc.network import Network
from repro.noc.topology import Mesh2D

N = 16


@pytest.fixture
def proto() -> DirectoryProtocol:
    hiers = [
        PrivateHierarchy(
            c,
            l1=CacheConfig(size=256, assoc=1, line_size=64),
            l2=CacheConfig(size=2048, assoc=2, line_size=64),
        )
        for c in range(N)
    ]
    return DirectoryProtocol(
        hiers, Directory(N), Network(Mesh2D(4, 4)), ProtocolLatencies()
    )


class TestBaselineRead:
    def test_cold_read_goes_off_chip(self, proto):
        tx = proto.read_miss(0, 32)
        assert not tx.communicating
        assert tx.off_chip
        assert tx.latency >= proto.lat.memory
        assert proto.hierarchies[0].peek_state(32) is Mesif.EXCLUSIVE

    def test_read_from_dirty_owner_is_communicating(self, proto):
        proto.write_miss(1, 32)
        tx = proto.read_miss(0, 32)
        assert tx.communicating
        assert tx.responder == 1
        assert tx.minimal_targets == {1}
        assert not tx.off_chip
        # Requester gets F; previous owner degrades to S.
        assert proto.hierarchies[0].peek_state(32) is Mesif.FORWARD
        assert proto.hierarchies[1].peek_state(32) is Mesif.SHARED

    def test_read_from_exclusive_owner(self, proto):
        proto.read_miss(1, 32)  # core 1 gets E
        assert proto.hierarchies[1].peek_state(32) is Mesif.EXCLUSIVE
        tx = proto.read_miss(0, 32)
        assert tx.communicating
        assert tx.responder == 1

    def test_second_read_forwarded_by_f_holder(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(0, 32)   # 0 now F
        tx = proto.read_miss(2, 32)
        assert tx.communicating
        assert tx.responder == 0
        assert proto.hierarchies[2].peek_state(32) is Mesif.FORWARD
        assert proto.hierarchies[0].peek_state(32) is Mesif.SHARED

    def test_read_latency_cheaper_local_home(self, proto):
        # Block 0's home is node 0; block 15's home is node 15.
        near = proto.read_miss(0, 0)
        far = proto.read_miss(0, 15)
        assert near.latency < far.latency


class TestBaselineWriteUpgrade:
    def test_write_miss_invalidates_all_sharers(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        proto.read_miss(3, 32)
        tx = proto.write_miss(0, 32)
        assert tx.communicating
        assert tx.minimal_targets == {1, 2, 3}
        assert tx.invalidated == {1, 2, 3}
        for node in (1, 2, 3):
            assert proto.hierarchies[node].peek_state(32) is Mesif.INVALID
        assert proto.hierarchies[0].peek_state(32) is Mesif.MODIFIED
        ent = proto.directory.peek(32)
        assert ent.owner == 0 and ent.sharers == {0}

    def test_write_to_dirty_owner_transfers_ownership(self, proto):
        proto.write_miss(1, 32)
        tx = proto.write_miss(0, 32)
        assert tx.responder == 1
        assert tx.minimal_targets == {1}
        assert proto.hierarchies[1].peek_state(32) is Mesif.INVALID

    def test_cold_write_is_non_communicating(self, proto):
        tx = proto.write_miss(0, 32)
        assert not tx.communicating
        assert tx.off_chip

    def test_upgrade_with_sharers(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(0, 32)  # 0 has F, 1 has S
        tx = proto.upgrade_miss(0, 32)
        assert tx.kind is MissKind.UPGRADE
        assert tx.communicating
        assert tx.minimal_targets == {1}
        assert proto.hierarchies[0].peek_state(32) is Mesif.MODIFIED
        assert proto.hierarchies[1].peek_state(32) is Mesif.INVALID

    def test_upgrade_sole_sharer_non_communicating(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(0, 32)
        # Core 1 evicted implicitly? No: force invalidation via write by 0.
        proto.upgrade_miss(0, 32)
        proto.read_miss(0, 32)  # hit, not a miss path; state already M
        # Fresh block where only core 0 has a copy:
        proto.read_miss(0, 64)
        tx = proto.upgrade_miss(0, 64)
        assert not tx.communicating


class TestPredictedRead:
    def test_correct_prediction_skips_indirection(self, proto):
        proto.write_miss(1, 32)
        base = proto.read_miss(0, 32)          # unpredicted reference
        proto.write_miss(1, 32)                # restore owner
        tx = proto.read_miss(2, 32, predicted={1})
        assert tx.prediction_correct is True
        assert not tx.indirection
        assert tx.latency < base.latency

    def test_incorrect_prediction_repaired_by_directory(self, proto):
        proto.write_miss(1, 32)
        tx = proto.read_miss(0, 32, predicted={5})
        assert tx.prediction_correct is False
        assert tx.indirection
        assert proto.hierarchies[0].peek_state(32) is Mesif.FORWARD

    def test_prediction_on_noncomm_miss_reports_none(self, proto):
        tx = proto.read_miss(0, 32, predicted={5})
        assert tx.prediction_correct is None
        assert not tx.communicating

    def test_superset_prediction_is_correct_but_wastes_messages(self, proto):
        proto.write_miss(1, 32)
        before = proto.network.stats.messages
        tx = proto.read_miss(0, 32, predicted={1, 2, 3})
        assert tx.prediction_correct is True
        # Requests to 3 nodes + nacks from 2 + dir request + data + update.
        assert proto.network.stats.messages - before >= 7

    def test_self_prediction_stripped(self, proto):
        proto.write_miss(1, 32)
        tx = proto.read_miss(0, 32, predicted={0})
        # {0} minus self is empty -> treated as unpredicted.
        assert tx.predicted is None
        assert tx.prediction_correct is None

    def test_empty_prediction_treated_as_none(self, proto):
        proto.write_miss(1, 32)
        tx = proto.read_miss(0, 32, predicted=frozenset())
        assert tx.predicted is None


class TestPredictedWriteUpgrade:
    def test_correct_write_prediction(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        tx = proto.write_miss(0, 32, predicted={1, 2})
        assert tx.prediction_correct is True
        assert not tx.indirection
        assert tx.invalidated == {1, 2}

    def test_partial_write_prediction_is_incorrect(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        tx = proto.write_miss(0, 32, predicted={1})
        assert tx.prediction_correct is False
        assert tx.indirection
        # The directory still invalidates everyone.
        assert tx.invalidated == {1, 2}
        assert proto.hierarchies[2].peek_state(32) is Mesif.INVALID

    def test_correct_upgrade_prediction(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(0, 32)
        tx = proto.upgrade_miss(0, 32, predicted={1})
        assert tx.prediction_correct is True
        assert not tx.indirection

    def test_coherence_invariant_after_predicted_write(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        proto.write_miss(0, 32, predicted={9})
        ent = proto.directory.peek(32)
        assert ent.owner == 0
        assert ent.sharers == {0}


class TestEvictions:
    def test_eviction_notifies_directory(self, proto):
        # Tiny L2 (32 lines, 2-way): blocks 32 and 32+16*64... use
        # conflicting blocks in the same set.
        sets = proto.hierarchies[0].l2.config.num_sets
        blocks = [1 + k * sets for k in range(3)]
        for b in blocks:
            proto.write_miss(0, b)
        # The first block must have been evicted and deregistered.
        assert proto.directory.peek(blocks[0]).sharers == set()

    def test_snoop_lookup_counting(self, proto):
        proto.write_miss(1, 32)
        before = proto.snoop_lookups
        proto.read_miss(0, 32, predicted={1, 2})
        assert proto.snoop_lookups == before + 2  # one per predicted node
