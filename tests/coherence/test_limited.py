"""Tests for the limited-pointer directory."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.limited import LimitedPointerDirectory
from repro.coherence.protocol import DirectoryProtocol
from repro.coherence.states import Mesif
from repro.noc.network import Network
from repro.noc.topology import Mesh2D

N = 16


def make_proto(pointers=2):
    hiers = [
        PrivateHierarchy(
            c,
            l1=CacheConfig(size=256, assoc=1, line_size=64),
            l2=CacheConfig(size=4096, assoc=2, line_size=64),
        )
        for c in range(N)
    ]
    directory = LimitedPointerDirectory(N, pointers=pointers)
    return DirectoryProtocol(hiers, directory, Network(Mesh2D(4, 4)))


class TestPointerTracking:
    def test_within_pointer_budget_stays_precise(self):
        proto = make_proto(pointers=3)
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        proto.read_miss(3, 32)
        d = proto.directory
        assert d.can_verify(32)
        assert d.tracked_sharers(32) == {1, 2, 3}
        assert d.overflows == 0

    def test_overflow_goes_coarse(self):
        proto = make_proto(pointers=2)
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        proto.read_miss(3, 32)  # third sharer: overflow
        d = proto.directory
        assert d.is_coarse(32)
        assert not d.can_verify(32)
        assert d.overflows == 1
        assert d.coarse_entries() == 1

    def test_exclusive_fill_resets_to_precise(self):
        proto = make_proto(pointers=2)
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        proto.read_miss(3, 32)
        proto.write_miss(5, 32)  # exclusive ownership resets pointers
        d = proto.directory
        assert d.can_verify(32)
        assert d.tracked_sharers(32) == {5}

    def test_eviction_frees_tracking(self):
        proto = make_proto(pointers=2)
        proto.write_miss(1, 32)
        proto.directory.record_eviction(32, 1, was_dirty=True)
        assert proto.directory.tracked_sharers(32) == set()
        assert not proto.directory.is_coarse(32)

    def test_ground_truth_still_exact(self):
        """Sharer ground truth must not be limited — only HW knowledge."""
        proto = make_proto(pointers=1)
        proto.write_miss(1, 32)
        for reader in (2, 3, 4):
            proto.read_miss(reader, 32)
        assert proto.directory.peek(32).sharers == {1, 2, 3, 4}

    def test_invalid_pointer_count(self):
        with pytest.raises(ValueError):
            LimitedPointerDirectory(N, pointers=0)


class TestCoarseCosts:
    def _shared_widely(self, proto, block=32, readers=5):
        proto.write_miss(1, block)
        for reader in range(2, 2 + readers):
            proto.read_miss(reader, block)

    def test_coarse_write_broadcasts_invalidations(self):
        limited = make_proto(pointers=2)
        full = make_proto(pointers=16)
        self._shared_widely(limited)
        self._shared_widely(full)
        b0_lim = limited.network.stats.messages
        b0_full = full.network.stats.messages
        limited.write_miss(9, 32)
        full.write_miss(9, 32)
        # The coarse entry fans invalidations to every core.
        assert (
            limited.network.stats.messages - b0_lim
            > full.network.stats.messages - b0_full
        )

    def test_coarse_write_still_invalidates_exactly_the_holders(self):
        proto = make_proto(pointers=2)
        self._shared_widely(proto)
        tx = proto.write_miss(9, 32)
        assert tx.invalidated == {1, 2, 3, 4, 5, 6}
        for node in tx.invalidated:
            assert proto.hierarchies[node].peek_state(32) is Mesif.INVALID

    def test_coarse_entry_blocks_prediction_fast_path(self):
        proto = make_proto(pointers=2)
        self._shared_widely(proto)
        # Core 9 predicts the *exact* sufficient set...
        minimal = proto.directory.peek(32).minimal_write_targets(9)
        tx = proto.write_miss(9, 32, predicted=minimal)
        # ...the prediction is semantically correct but cannot be
        # verified against a coarse entry: indirection stays.
        assert tx.prediction_correct is True
        assert tx.indirection is True

    def test_precise_entry_keeps_fast_path(self):
        proto = make_proto(pointers=8)
        self._shared_widely(proto, readers=3)
        minimal = proto.directory.peek(32).minimal_write_targets(9)
        tx = proto.write_miss(9, 32, predicted=minimal)
        assert tx.prediction_correct is True
        assert tx.indirection is False


class TestEngineIntegration:
    def test_limited_directory_run(self, small_machine, stable_workload):
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(
            stable_workload, machine=small_machine, directory_pointers=2,
            verify_coherence=True,
        )
        result = engine.run()
        assert result.misses > 0  # completes with invariants intact

    def test_fewer_pointers_cost_more_bandwidth(self, small_machine):
        from repro.sim.engine import SimulationEngine
        from repro.workloads.generator import build_workload
        from repro.workloads.patterns import PatternKind
        from tests.conftest import make_spec

        # Pairwise sharing holds 2 copies per block: a 1-pointer
        # directory overflows and must broadcast invalidations to all 15
        # remote cores instead of 1.  (When *everyone* holds a copy —
        # e.g. wide reduction fan-out — coarse and precise fan-outs
        # coincide and the penalty vanishes.)
        w = build_workload(
            make_spec(PatternKind.STABLE, epochs=1, iterations=6)
        )
        full = SimulationEngine(w, machine=small_machine).run()
        limited = SimulationEngine(
            w, machine=small_machine, directory_pointers=1
        ).run()
        assert (
            limited.network.bytes_total > 1.5 * full.network.bytes_total
        )
