"""Tests for the broadcast snooping protocol."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.directory import Directory
from repro.coherence.protocol import DirectoryProtocol
from repro.coherence.snooping import BroadcastProtocol
from repro.coherence.states import Mesif
from repro.noc.network import Network
from repro.noc.topology import Mesh2D

N = 16


def make(protocol_cls):
    hiers = [
        PrivateHierarchy(
            c,
            l1=CacheConfig(size=256, assoc=1, line_size=64),
            l2=CacheConfig(size=2048, assoc=2, line_size=64),
        )
        for c in range(N)
    ]
    return protocol_cls(hiers, Directory(N), Network(Mesh2D(4, 4)))


@pytest.fixture
def proto() -> BroadcastProtocol:
    return make(BroadcastProtocol)


class TestBroadcastBehaviour:
    def test_every_miss_broadcasts(self, proto):
        proto.read_miss(0, 32)
        # 15 requests + 1 data response.
        assert proto.network.stats.messages == 16
        assert proto.snoop_lookups == 15

    def test_no_indirection_ever(self, proto):
        proto.write_miss(1, 32)
        tx = proto.read_miss(0, 32)
        assert not tx.indirection

    def test_cache_to_cache_transfer(self, proto):
        proto.write_miss(1, 32)
        tx = proto.read_miss(0, 32)
        assert tx.communicating
        assert tx.responder == 1
        assert proto.hierarchies[0].peek_state(32) is Mesif.FORWARD

    def test_write_invalidates_sharers(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        tx = proto.write_miss(0, 32)
        assert tx.invalidated == {1, 2}
        assert proto.hierarchies[1].peek_state(32) is Mesif.INVALID

    def test_upgrade_latency_is_broadcast_bound(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(0, 32)
        tx = proto.upgrade_miss(0, 32)
        worst = max(proto.network.latency(0, d) for d in range(N) if d != 0)
        assert tx.latency == worst

    def test_predictions_ignored(self, proto):
        proto.write_miss(1, 32)
        tx = proto.read_miss(0, 32, predicted={9})
        assert tx.predicted is None
        assert tx.prediction_correct is None


class TestProtocolEquivalence:
    """Broadcast and directory must agree on *sharing state*, differing
    only in latency/traffic."""

    def _drive(self, proto):
        results = []
        results.append(proto.write_miss(1, 32))
        results.append(proto.read_miss(0, 32))
        results.append(proto.read_miss(2, 32))
        results.append(proto.upgrade_miss(2, 32))
        results.append(proto.read_miss(3, 32))
        return results

    def test_same_final_directory_state(self):
        d_proto = make(DirectoryProtocol)
        b_proto = make(BroadcastProtocol)
        self._drive(d_proto)
        self._drive(b_proto)
        d_ent = d_proto.directory.peek(32)
        b_ent = b_proto.directory.peek(32)
        assert d_ent.sharers == b_ent.sharers
        assert d_ent.owner == b_ent.owner

    def test_same_communication_classification(self):
        d_results = self._drive(make(DirectoryProtocol))
        b_results = self._drive(make(BroadcastProtocol))
        for d_tx, b_tx in zip(d_results, b_results):
            assert d_tx.communicating == b_tx.communicating
            assert d_tx.minimal_targets == b_tx.minimal_targets

    def test_broadcast_uses_more_bandwidth(self):
        d_proto = make(DirectoryProtocol)
        b_proto = make(BroadcastProtocol)
        self._drive(d_proto)
        self._drive(b_proto)
        assert (
            b_proto.network.stats.bytes_total
            > d_proto.network.stats.bytes_total
        )

    def test_broadcast_latency_not_worse_for_comm_misses(self):
        d_results = self._drive(make(DirectoryProtocol))
        b_results = self._drive(make(BroadcastProtocol))
        for d_tx, b_tx in zip(d_results, b_results):
            if d_tx.communicating and d_tx.kind.value == "read":
                assert b_tx.latency <= d_tx.latency
