"""Tests for the full-map directory."""

from repro.coherence.directory import Directory, DirectoryEntry


class TestDirectoryEntry:
    def test_empty_entry(self):
        ent = DirectoryEntry()
        assert not ent.cached_anywhere
        assert ent.responder is None
        assert ent.minimal_read_targets() == frozenset()
        assert ent.minimal_write_targets(0) == frozenset()

    def test_owner_is_responder(self):
        ent = DirectoryEntry(sharers={3}, owner=3, dirty=True)
        assert ent.responder == 3
        assert ent.minimal_read_targets() == {3}

    def test_forwarder_responds_when_no_owner(self):
        ent = DirectoryEntry(sharers={1, 2}, forwarder=2)
        assert ent.responder == 2
        assert ent.minimal_read_targets() == {2}

    def test_write_targets_exclude_requester(self):
        ent = DirectoryEntry(sharers={0, 1, 2})
        assert ent.minimal_write_targets(1) == {0, 2}


class TestDirectory:
    def test_home_interleaving(self):
        d = Directory(num_nodes=16)
        assert d.home_of(0) == 0
        assert d.home_of(17) == 1
        assert d.home_of(31) == 15

    def test_peek_does_not_allocate(self):
        d = Directory(num_nodes=4)
        d.peek(10)
        assert d.num_entries() == 0

    def test_read_fill_sets_forwarder(self):
        d = Directory(num_nodes=4)
        d.record_exclusive_fill(5, requester=1, dirty=True)
        d.record_read_fill(5, requester=2)
        ent = d.peek(5)
        assert ent.sharers == {1, 2}
        assert ent.owner is None
        assert ent.forwarder == 2
        assert not ent.dirty

    def test_exclusive_fill_clears_other_sharers(self):
        d = Directory(num_nodes=4)
        d.record_exclusive_fill(5, requester=1, dirty=False)
        d.record_read_fill(5, requester=2)
        d.record_exclusive_fill(5, requester=3, dirty=True)
        ent = d.peek(5)
        assert ent.sharers == {3}
        assert ent.owner == 3
        assert ent.dirty

    def test_eviction_removes_core(self):
        d = Directory(num_nodes=4)
        d.record_exclusive_fill(5, requester=1, dirty=False)
        d.record_read_fill(5, requester=2)
        d.record_eviction(5, 2, was_dirty=False)
        ent = d.peek(5)
        assert ent.sharers == {1}
        assert ent.forwarder is None  # core 2 held F

    def test_last_eviction_frees_entry(self):
        d = Directory(num_nodes=4)
        d.record_exclusive_fill(5, requester=1, dirty=True)
        d.record_eviction(5, 1, was_dirty=True)
        assert d.num_entries() == 0

    def test_eviction_of_unknown_block_is_noop(self):
        d = Directory(num_nodes=4)
        d.record_eviction(99, 0, was_dirty=False)
        assert d.num_entries() == 0

    def test_store_upgrade(self):
        d = Directory(num_nodes=4)
        d.record_exclusive_fill(5, requester=0, dirty=False)
        d.record_read_fill(5, requester=1)
        d.record_store_upgrade(5, 1)
        ent = d.peek(5)
        assert ent.owner == 1
        assert ent.sharers == {1}
        assert ent.dirty
