"""Tests for prediction-guided multicast snooping."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.directory import Directory
from repro.coherence.multicast import MulticastProtocol
from repro.coherence.snooping import BroadcastProtocol
from repro.coherence.states import Mesif
from repro.noc.network import Network
from repro.noc.topology import Mesh2D

N = 16


def make(cls):
    hiers = [
        PrivateHierarchy(
            c,
            l1=CacheConfig(size=256, assoc=1, line_size=64),
            l2=CacheConfig(size=2048, assoc=2, line_size=64),
        )
        for c in range(N)
    ]
    return cls(hiers, Directory(N), Network(Mesh2D(4, 4)))


@pytest.fixture
def proto() -> MulticastProtocol:
    return make(MulticastProtocol)


class TestMulticastRead:
    def test_unpredicted_miss_broadcasts(self, proto):
        proto.read_miss(0, 32)
        assert proto.network.stats.messages == 16  # 15 requests + data

    def test_correct_prediction_multicasts(self, proto):
        proto.write_miss(1, 32)
        before = proto.network.stats.messages
        tx = proto.read_miss(0, 32, predicted={1})
        assert tx.prediction_correct is True
        # Requests to {1, home} + data (+ dirty writeback): far below 15.
        assert proto.network.stats.messages - before <= 5

    def test_correct_prediction_state_matches_broadcast(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(0, 32, predicted={1})
        assert proto.hierarchies[0].peek_state(32) is Mesif.FORWARD
        assert proto.hierarchies[1].peek_state(32) is Mesif.SHARED

    def test_incorrect_prediction_retries_as_broadcast(self, proto):
        proto.write_miss(1, 32)
        tx = proto.read_miss(0, 32, predicted={5})
        assert tx.prediction_correct is False
        # The retry still completes correctly.
        assert proto.hierarchies[0].peek_state(32) is Mesif.FORWARD
        # And costs more than a correct prediction would.
        assert tx.latency > 0

    def test_misprediction_slower_than_no_prediction(self):
        a = make(MulticastProtocol)
        b = make(MulticastProtocol)
        for proto in (a, b):
            proto.write_miss(1, 32)
        plain = a.read_miss(0, 32)
        mispredicted = b.read_miss(0, 32, predicted={5})
        assert mispredicted.latency > plain.latency


class TestMulticastWriteUpgrade:
    def test_correct_write_prediction(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        tx = proto.write_miss(0, 32, predicted={1, 2})
        assert tx.prediction_correct is True
        assert tx.invalidated == {1, 2}
        assert proto.hierarchies[0].peek_state(32) is Mesif.MODIFIED

    def test_partial_write_prediction_retried(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        tx = proto.write_miss(0, 32, predicted={1})
        assert tx.prediction_correct is False
        assert tx.invalidated == {1, 2}  # retry invalidated everyone
        assert proto.hierarchies[2].peek_state(32) is Mesif.INVALID

    def test_correct_upgrade_prediction(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(0, 32)
        tx = proto.upgrade_miss(0, 32, predicted={1})
        assert tx.prediction_correct is True
        assert proto.hierarchies[1].peek_state(32) is Mesif.INVALID


class TestBandwidthClaim:
    def test_multicast_saves_bandwidth_over_broadcast(self, small_machine):
        """The paper's introduction claim: prediction relaxes snooping
        bandwidth by replacing broadcast with multicast."""
        from repro.core.predictor import SPPredictor
        from repro.sim.engine import simulate
        from repro.workloads.generator import build_workload
        from repro.workloads.patterns import PatternKind
        from tests.conftest import make_spec

        w = build_workload(
            make_spec(PatternKind.STABLE, epochs=2, iterations=8)
        )
        bcast = simulate(w, machine=small_machine, protocol="broadcast")
        mcast = simulate(
            w, machine=small_machine, protocol="multicast",
            predictor=SPPredictor(16),
        )
        assert mcast.network.bytes_total < bcast.network.bytes_total
        assert mcast.snoop_lookups < bcast.snoop_lookups
        # Latency stays in the same ballpark (not the point of multicast).
        assert mcast.avg_miss_latency < bcast.avg_miss_latency * 1.5
