"""Tests for the coherence invariant verifier."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.directory import Directory
from repro.coherence.protocol import DirectoryProtocol
from repro.coherence.states import Mesif
from repro.coherence.verify import CoherenceVerifier, CoherenceViolation
from repro.noc.network import Network
from repro.noc.topology import Mesh2D

N = 16


@pytest.fixture
def proto():
    hiers = [
        PrivateHierarchy(
            c,
            l1=CacheConfig(size=256, assoc=1, line_size=64),
            l2=CacheConfig(size=2048, assoc=2, line_size=64),
        )
        for c in range(N)
    ]
    return DirectoryProtocol(hiers, Directory(N), Network(Mesh2D(4, 4)))


class TestVerifier:
    def test_clean_states_pass(self, proto):
        verifier = CoherenceVerifier(proto)
        proto.write_miss(1, 32)
        proto.read_miss(0, 32)
        proto.read_miss(2, 32)
        verifier.check_block(32)
        assert verifier.checks == 1

    def test_untouched_block_passes(self, proto):
        CoherenceVerifier(proto).check_block(999)

    def test_detects_directory_cache_mismatch(self, proto):
        proto.write_miss(1, 32)
        proto.hierarchies[1].invalidate(32)  # silent drop: dir is stale
        with pytest.raises(CoherenceViolation, match="sharers"):
            CoherenceVerifier(proto).check_block(32)

    def test_detects_double_writer(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        # Corrupt: promote the shared copy to Modified behind the
        # directory's back.
        proto.hierarchies[2].set_state(32, Mesif.MODIFIED)
        with pytest.raises(CoherenceViolation):
            CoherenceVerifier(proto).check_block(32)

    def test_detects_double_forwarder(self, proto):
        proto.write_miss(1, 32)
        proto.read_miss(0, 32)
        proto.read_miss(2, 32)
        # Corrupt: a second Forward copy.
        proto.hierarchies[0].set_state(32, Mesif.FORWARD)
        proto.hierarchies[2].set_state(32, Mesif.FORWARD)
        with pytest.raises(CoherenceViolation, match="Forward"):
            CoherenceVerifier(proto).check_block(32)

    def test_check_all(self, proto):
        proto.write_miss(1, 32)
        proto.write_miss(2, 48)
        verifier = CoherenceVerifier(proto)
        verifier.check_all([32, 48])
        assert verifier.checks == 2


class TestEngineIntegration:
    def test_verified_run_passes(self, small_machine, stable_workload):
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(
            stable_workload, machine=small_machine, verify_coherence=True
        )
        result = engine.run()
        assert engine.verifier.checks == result.misses

    def test_verified_run_with_prediction(self, small_machine, stride_workload):
        from repro.core.predictor import SPPredictor
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(
            stride_workload, machine=small_machine,
            predictor=SPPredictor(16), verify_coherence=True,
        )
        engine.run()
        assert engine.verifier.checks > 0
