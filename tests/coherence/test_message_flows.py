"""Message-sequence specifications for every protocol flow.

Uses the NoC transcript to pin down exactly which messages each
transaction type emits — the executable version of the flow diagrams in
``docs/protocol.md``.  Any protocol change that alters a flow's message
sequence fails here, loudly.
"""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.directory import Directory
from repro.coherence.multicast import MulticastProtocol
from repro.coherence.protocol import DirectoryProtocol
from repro.coherence.snooping import BroadcastProtocol
from repro.noc.network import MessageClass, Network
from repro.noc.topology import Mesh2D

N = 16
CONTROL = MessageClass.CONTROL
DATA = MessageClass.DATA


def make(cls):
    hiers = [
        PrivateHierarchy(
            c,
            l1=CacheConfig(size=256, assoc=1, line_size=64),
            l2=CacheConfig(size=4096, assoc=2, line_size=64),
        )
        for c in range(N)
    ]
    net = Network(Mesh2D(4, 4))
    return cls(hiers, Directory(N), net), net


def record(net, fn):
    net.start_transcript()
    fn()
    return net.stop_transcript()


def msgs(transcript):
    """Compact view: list of (src, dst, class)."""
    return [(m.src, m.dst, m.msg) for m in transcript]


class TestDirectoryBaselineFlows:
    def test_cold_read_flow(self):
        proto, net = make(DirectoryProtocol)
        home = proto.directory.home_of(32)
        t = record(net, lambda: proto.read_miss(5, 32))
        assert msgs(t) == [(5, home, CONTROL), (home, 5, DATA)]

    def test_owner_read_flow(self):
        proto, net = make(DirectoryProtocol)
        proto.write_miss(1, 32)
        home = proto.directory.home_of(32)
        t = record(net, lambda: proto.read_miss(5, 32))
        # Request -> forward -> data, plus the dirty owner's writeback.
        assert msgs(t) == [
            (5, home, CONTROL),   # GetS to the home
            (home, 1, CONTROL),   # forward to the owner
            (1, 5, DATA),         # cache-to-cache data
            (1, home, DATA),      # writeback (dirty owner degrades to S)
        ]

    def test_clean_forwarder_read_flow(self):
        proto, net = make(DirectoryProtocol)
        proto.write_miss(1, 32)
        proto.read_miss(5, 32)   # 5 becomes F, 1 degrades to S
        home = proto.directory.home_of(32)
        t = record(net, lambda: proto.read_miss(9, 32))
        # Clean forwarder: control notification, not a writeback.
        assert msgs(t) == [
            (9, home, CONTROL),
            (home, 5, CONTROL),
            (5, 9, DATA),
            (5, home, CONTROL),
        ]

    def test_write_with_sharers_flow(self):
        proto, net = make(DirectoryProtocol)
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)   # 2=F, 1=S
        home = proto.directory.home_of(32)
        t = record(net, lambda: proto.write_miss(5, 32))
        flow = msgs(t)
        # GetM, then per-sharer (inv + ack), data from the forwarder.
        assert flow[0] == (5, home, CONTROL)
        assert (home, 1, CONTROL) in flow and (1, 5, CONTROL) in flow
        assert (home, 2, CONTROL) in flow and (2, 5, CONTROL) in flow
        assert (home, 2, CONTROL) in flow  # forwarder also receives fetch
        assert (2, 5, DATA) in flow
        assert len(flow) == 7

    def test_upgrade_flow(self):
        proto, net = make(DirectoryProtocol)
        proto.write_miss(1, 32)
        proto.read_miss(5, 32)
        home = proto.directory.home_of(32)
        t = record(net, lambda: proto.upgrade_miss(5, 32))
        assert msgs(t) == [
            (5, home, CONTROL),   # upgrade request
            (home, 1, CONTROL),   # invalidate the other sharer
            (1, 5, CONTROL),      # ack to the requester
            (home, 5, CONTROL),   # grant
        ]

    def test_sole_sharer_upgrade_flow(self):
        proto, net = make(DirectoryProtocol)
        proto.read_miss(5, 32)
        home = proto.directory.home_of(32)
        t = record(net, lambda: proto.upgrade_miss(5, 32))
        assert msgs(t) == [(5, home, CONTROL), (home, 5, CONTROL)]

    def test_dirty_eviction_writes_back(self):
        proto, net = make(DirectoryProtocol)
        sets = proto.hierarchies[0].l2.config.num_sets
        blocks = [1 + k * sets for k in range(3)]
        proto.write_miss(0, blocks[0])
        proto.write_miss(0, blocks[1])
        t = record(net, lambda: proto.write_miss(0, blocks[2]))
        victim_home = proto.directory.home_of(blocks[0])
        assert (0, victim_home, DATA) in msgs(t)


class TestDirectoryPredictedFlows:
    def test_correct_read_prediction_flow(self):
        proto, net = make(DirectoryProtocol)
        proto.write_miss(1, 32)
        home = proto.directory.home_of(32)
        t = record(net, lambda: proto.read_miss(5, 32, predicted={1}))
        assert msgs(t) == [
            (5, 1, CONTROL),      # predicted request
            (5, home, CONTROL),   # tagged request to the directory
            (1, 5, DATA),         # direct data
            (1, home, DATA),      # dirty writeback / dir update
        ]

    def test_mispredicted_read_adds_nack_and_repair(self):
        proto, net = make(DirectoryProtocol)
        proto.write_miss(1, 32)
        home = proto.directory.home_of(32)
        t = record(net, lambda: proto.read_miss(5, 32, predicted={9}))
        flow = msgs(t)
        assert (5, 9, CONTROL) in flow    # wasted predicted request
        assert (9, 5, CONTROL) in flow    # nack
        assert (home, 1, CONTROL) in flow  # directory repair: forward
        assert (1, 5, DATA) in flow

    def test_correct_write_prediction_flow(self):
        proto, net = make(DirectoryProtocol)
        proto.write_miss(1, 32)
        proto.read_miss(2, 32)
        home = proto.directory.home_of(32)
        t = record(net, lambda: proto.write_miss(5, 32, predicted={1, 2}))
        flow = msgs(t)
        # Direct invalidation acks from both predicted sharers.
        assert (1, 5, CONTROL) in flow
        assert (2, 5, CONTROL) in flow
        # Directory response still required for writes.
        assert (home, 5, CONTROL) in flow
        # Data from the responder (forwarder core 2).
        assert (2, 5, DATA) in flow

    def test_prediction_categories_tagged(self):
        proto, net = make(DirectoryProtocol)
        proto.write_miss(1, 32)
        net.start_transcript()
        proto.read_miss(5, 32, predicted={1, 9})
        t = net.stop_transcript()
        pred_messages = [m for m in t if m.category.startswith("pred_")]
        # Predicted requests (2) + nack (1) carry prediction categories.
        assert len(pred_messages) == 3


class TestSnoopingFlows:
    def test_broadcast_read_flow(self):
        proto, net = make(BroadcastProtocol)
        proto.write_miss(1, 32)
        t = record(net, lambda: proto.read_miss(5, 32))
        flow = msgs(t)
        requests = [m for m in flow if m[0] == 5 and m[2] is CONTROL]
        assert len(requests) == 15  # everyone but self
        assert (1, 5, DATA) in flow

    def test_multicast_correct_read_flow(self):
        proto, net = make(MulticastProtocol)
        proto.write_miss(1, 32)
        home = proto.directory.home_of(32)
        t = record(net, lambda: proto.read_miss(5, 32, predicted={1}))
        flow = msgs(t)
        requests = [m for m in flow if m[0] == 5 and m[2] is CONTROL]
        # Multicast to predicted node + home only.
        assert {(5, 1, CONTROL), (5, home, CONTROL)} == set(requests)
        assert (1, 5, DATA) in flow

    def test_multicast_retry_floods_on_misprediction(self):
        proto, net = make(MulticastProtocol)
        proto.write_miss(1, 32)
        t = record(net, lambda: proto.read_miss(5, 32, predicted={9}))
        requests = [m for m in msgs(t) if m[0] == 5 and m[2] is CONTROL]
        # First round (2 targets) + broadcast retry (15 targets).
        assert len(requests) == 2 + 15
