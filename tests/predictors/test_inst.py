"""Tests for the PC-indexed INST predictor."""

from repro.coherence.protocol import MissKind
from repro.predictors.inst import InstPredictor
from tests.core.test_predictor import read_result

N = 16


class TestInstPredictor:
    def test_unknown_pc_predicts_nothing(self):
        pred = InstPredictor(N)
        assert pred.predict(0, 0, 0x400, MissKind.READ) is None

    def test_indexes_by_pc_not_address(self):
        pred = InstPredictor(N)
        for _ in range(2):
            pred.train(0, 100, 0x400, MissKind.READ, read_result(0, 7))
        # Different block, same instruction -> predicted.
        assert pred.predict(0, 999, 0x400, MissKind.READ).targets == {7}
        # Same block, different instruction -> no entry.
        assert pred.predict(0, 100, 0x404, MissKind.READ) is None

    def test_tables_are_per_core(self):
        pred = InstPredictor(N)
        for _ in range(2):
            pred.train(0, 100, 0x400, MissKind.READ, read_result(0, 7))
        assert pred.predict(1, 100, 0x400, MissKind.READ) is None

    def test_capacity_cap(self):
        pred = InstPredictor(N, max_entries=1)
        for _ in range(2):
            pred.train(0, 0, 0x400, MissKind.READ, read_result(0, 7))
        for _ in range(2):
            pred.train(0, 0, 0x500, MissKind.READ, read_result(0, 8))
        assert pred.predict(0, 0, 0x400, MissKind.READ) is None
        assert pred.predict(0, 0, 0x500, MissKind.READ).targets == {8}

    def test_fewer_entries_than_addr_for_spread_addresses(self):
        """The motivation for INST: static PCs are few, addresses many."""
        from repro.predictors.addr import AddrPredictor

        inst = InstPredictor(N)
        addr = AddrPredictor(N)
        for block in range(0, 400, 8):
            inst.train(0, block, 0x400, MissKind.READ, read_result(0, 7))
            addr.train(0, block, 0x400, MissKind.READ, read_result(0, 7))
        assert inst.table_entries() == 1
        assert addr.table_entries() > 1
