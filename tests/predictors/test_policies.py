"""Tests for the owner vs group destination-set policies."""

import pytest

from repro.coherence.protocol import MissKind
from repro.predictors.addr import AddrPredictor
from repro.predictors.group import GroupEntry, GroupPredictorConfig
from repro.predictors.inst import InstPredictor
from tests.core.test_predictor import read_result

N = 16


class TestOwnerPolicy:
    def test_owner_picks_most_active(self):
        ent = GroupEntry(num_cores=N, config=GroupPredictorConfig())
        ent.train_up(3)
        ent.train_up(3)
        ent.train_up(3)
        ent.train_up(5)
        ent.train_up(5)
        assert ent.owner() == {3}

    def test_owner_respects_activation(self):
        ent = GroupEntry(num_cores=N, config=GroupPredictorConfig())
        ent.train_up(3)  # count 1 < activation 2
        assert ent.owner() == frozenset()

    def test_owner_excludes_self(self):
        ent = GroupEntry(num_cores=N, config=GroupPredictorConfig())
        for _ in range(3):
            ent.train_up(3)
        ent.train_up(5)
        ent.train_up(5)
        assert ent.owner(exclude=3) == {5}

    def test_tie_breaks_to_lowest_id(self):
        ent = GroupEntry(num_cores=N, config=GroupPredictorConfig())
        ent.train_up(9)
        ent.train_up(9)
        ent.train_up(4)
        ent.train_up(4)
        assert ent.owner() == {4}

    def test_predict_dispatch(self):
        ent = GroupEntry(num_cores=N, config=GroupPredictorConfig())
        ent.train_up(3)
        ent.train_up(3)
        assert ent.predict("group") == ent.group()
        assert ent.predict("owner") == ent.owner()
        with pytest.raises(ValueError):
            ent.predict("magic")


class TestPolicyOnPredictors:
    @pytest.mark.parametrize("cls", [AddrPredictor, InstPredictor])
    def test_owner_policy_predicts_singletons(self, cls):
        pred = cls(N, policy="owner")
        for responder in (7, 7, 7, 3, 3):
            pred.train(0, 100, 0x40, MissKind.READ, read_result(0, responder))
        p = pred.predict(0, 100, 0x40, MissKind.READ)
        assert p.targets == {7}

    @pytest.mark.parametrize("cls", [AddrPredictor, InstPredictor])
    def test_group_policy_predicts_sets(self, cls):
        pred = cls(N, policy="group")
        for responder in (7, 7, 3, 3):
            pred.train(0, 100, 0x40, MissKind.READ, read_result(0, responder))
        p = pred.predict(0, 100, 0x40, MissKind.READ)
        assert p.targets == {3, 7}

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            AddrPredictor(N, policy="nope")
        with pytest.raises(ValueError):
            InstPredictor(N, policy="nope")

    def test_owner_uses_less_bandwidth_end_to_end(self, small_machine):
        from repro.sim.engine import simulate
        from repro.workloads.generator import build_workload
        from repro.workloads.patterns import PatternKind
        from tests.conftest import make_spec

        w = build_workload(
            make_spec(PatternKind.COMBINED, epochs=2, iterations=6)
        )
        group = simulate(
            w, machine=small_machine, predictor=AddrPredictor(N, policy="group")
        )
        owner = simulate(
            w, machine=small_machine, predictor=AddrPredictor(N, policy="owner")
        )
        assert owner.predicted_target_sum < group.predicted_target_sum
