"""Tests for the group predictor machinery."""

import pytest

from repro.predictors.group import GroupEntry, GroupPredictorConfig, GroupTable

N = 16


def make_entry(**kw) -> GroupEntry:
    return GroupEntry(num_cores=N, config=GroupPredictorConfig(**kw))


class TestGroupEntry:
    def test_activation_threshold(self):
        ent = make_entry()
        ent.train_up(3)
        assert ent.group() == frozenset()  # count 1 < activation 2
        ent.train_up(3)
        assert ent.group() == {3}

    def test_counter_saturates(self):
        ent = make_entry()
        for _ in range(10):
            ent.train_up(3)
        assert ent.counts[3] == 3  # 2-bit max

    def test_exclude_self(self):
        ent = make_entry()
        ent.train_up(3)
        ent.train_up(3)
        assert ent.group(exclude=3) == frozenset()

    def test_train_down_on_rollover(self):
        ent = make_entry(rollover_bits=2)  # decay every 4 events
        ent.train_up(1)
        ent.train_up(1)
        ent.train_up(2)
        assert ent.group() == {1}  # core 2 not yet at activation
        ent.train_up(2)  # 4th event triggers decay
        # counts were 1:2->1, 2:2->1 after decay
        assert ent.group() == frozenset()

    def test_inactive_destination_eventually_leaves(self):
        ent = make_entry(rollover_bits=2)
        ent.train_up(5)
        ent.train_up(5)
        ent.train_up(5)  # saturated at 3
        for _ in range(16):
            ent.train_up(9)
        assert 5 not in ent.group()
        assert 9 in ent.group()

    def test_entry_bits(self):
        cfg = GroupPredictorConfig()
        assert cfg.entry_bits(16) == 37  # 16 x 2-bit + 5-bit rollover


class TestGroupTable:
    def test_probe_does_not_allocate(self):
        table = GroupTable(N, GroupPredictorConfig())
        assert table.probe("k") is None
        assert len(table) == 0

    def test_entry_allocates(self):
        table = GroupTable(N, GroupPredictorConfig())
        ent = table.entry("k")
        assert table.probe("k") is ent

    def test_capacity_lru(self):
        table = GroupTable(N, GroupPredictorConfig(), max_entries=2)
        table.entry("a")
        table.entry("b")
        table.probe("a")
        table.entry("c")
        assert table.probe("b") is None
        assert table.probe("a") is not None
        assert table.evictions == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GroupTable(N, GroupPredictorConfig(), max_entries=0)

    def test_storage_bits(self):
        table = GroupTable(N, GroupPredictorConfig())
        table.entry("a")
        table.entry("b")
        assert table.storage_bits(tag_bits=32) == 2 * (32 + 37)
