"""Tests for the index-less UNI predictor."""

from repro.coherence.protocol import MissKind
from repro.predictors.uni import UniPredictor
from tests.core.test_predictor import read_result

N = 16


class TestUniPredictor:
    def test_predicts_recent_targets_for_any_miss(self):
        pred = UniPredictor(N)
        for _ in range(2):
            pred.train(0, 100, 0x400, MissKind.READ, read_result(0, 7))
        # Completely unrelated block and PC still get the same prediction.
        assert pred.predict(0, 9999, 0x999, MissKind.READ).targets == {7}

    def test_initially_silent(self):
        pred = UniPredictor(N)
        assert pred.predict(0, 0, 0, MissKind.READ) is None

    def test_per_core_entries(self):
        pred = UniPredictor(N)
        for _ in range(2):
            pred.train(0, 0, 0, MissKind.READ, read_result(0, 7))
        assert pred.predict(1, 0, 0, MissKind.READ) is None

    def test_adapts_to_new_targets(self):
        pred = UniPredictor(N)
        for _ in range(3):
            pred.train(0, 0, 0, MissKind.READ, read_result(0, 7))
        # Enough events for two roll-over decays (2 x 32) to push the old
        # saturated target below the activation threshold.
        for _ in range(70):
            pred.train(0, 0, 0, MissKind.READ, read_result(0, 9))
        p = pred.predict(0, 0, 0, MissKind.READ)
        assert 9 in p.targets
        assert 7 not in p.targets  # trained down by the roll-over decay

    def test_storage_is_tiny(self):
        pred = UniPredictor(N)
        assert pred.storage_bits(N) == N * 37  # one entry per core, no tags
