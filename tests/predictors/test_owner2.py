"""Tests for the two-level owner predictor."""

import pytest

from repro.coherence.protocol import MissKind
from repro.predictors.owner2 import OwnerTwoLevelPredictor, _OwnerEntry
from tests.core.test_predictor import read_result

N = 16


class TestOwnerEntry:
    def test_confidence_grows_on_confirmation(self):
        ent = _OwnerEntry(owner=3)
        ent.observe(3)
        assert ent.confident

    def test_confidence_shrinks_on_mismatch(self):
        ent = _OwnerEntry(owner=3, confidence=2)
        ent.observe(5)
        assert ent.owner == 3  # not replaced yet
        assert not ent.confident

    def test_owner_replaced_at_zero_confidence(self):
        ent = _OwnerEntry(owner=3, confidence=0)
        ent.observe(5)
        assert ent.owner == 5
        assert ent.confidence == 1

    def test_confidence_saturates(self):
        ent = _OwnerEntry(owner=3)
        for _ in range(10):
            ent.observe(3)
        assert ent.confidence == _OwnerEntry.CONF_MAX


class TestOwnerTwoLevelPredictor:
    def test_needs_confidence_to_predict(self):
        pred = OwnerTwoLevelPredictor(N)
        pred.train(0, 100, 0, MissKind.READ, read_result(0, 7))
        # First sighting: confidence 1 < threshold 2.
        assert pred.predict(0, 100, 0, MissKind.READ) is None
        pred.train(0, 100, 0, MissKind.READ, read_result(0, 7))
        p = pred.predict(0, 100, 0, MissKind.READ)
        assert p.targets == {7}

    def test_never_predicts_upgrades(self):
        pred = OwnerTwoLevelPredictor(N)
        for _ in range(3):
            pred.train(0, 100, 0, MissKind.READ, read_result(0, 7))
        assert pred.predict(0, 100, 0, MissKind.UPGRADE) is None

    def test_macroblock_sharing(self):
        pred = OwnerTwoLevelPredictor(N, blocks_per_macroblock=4)
        for _ in range(2):
            pred.train(0, 100, 0, MissKind.READ, read_result(0, 7))
        assert pred.predict(0, 103, 0, MissKind.READ).targets == {7}
        assert pred.predict(0, 104, 0, MissKind.READ) is None

    def test_owner_change_requires_persistence(self):
        pred = OwnerTwoLevelPredictor(N)
        for _ in range(4):
            pred.train(0, 100, 0, MissKind.READ, read_result(0, 7))
        # One observation of a new owner is not enough.
        pred.train(0, 100, 0, MissKind.READ, read_result(0, 9))
        p = pred.predict(0, 100, 0, MissKind.READ)
        assert p is not None and p.targets == {7}
        # Repeated new-owner observations eventually flip the entry.
        for _ in range(6):
            pred.train(0, 100, 0, MissKind.READ, read_result(0, 9))
        assert pred.predict(0, 100, 0, MissKind.READ).targets == {9}

    def test_capacity_cap(self):
        pred = OwnerTwoLevelPredictor(N, max_entries=1)
        pred.train(0, 0, 0, MissKind.READ, read_result(0, 7))
        pred.train(0, 400, 0, MissKind.READ, read_result(0, 8))
        assert pred.table_entries() == 1

    def test_storage_accounting(self):
        pred = OwnerTwoLevelPredictor(N)
        pred.train(0, 0, 0, MissKind.READ, read_result(0, 7))
        pred.train(1, 0, 0, MissKind.READ, read_result(1, 7))
        assert pred.storage_bits(N) == 2 * 38

    def test_end_to_end_accelerates_reads(self, small_machine):
        from repro.sim.engine import simulate
        from repro.workloads.generator import build_workload
        from repro.workloads.patterns import PatternKind
        from tests.conftest import make_spec

        w = build_workload(
            make_spec(PatternKind.STABLE, epochs=2, iterations=8)
        )
        base = simulate(w, machine=small_machine)
        owner = simulate(
            w, machine=small_machine, predictor=OwnerTwoLevelPredictor(N)
        )
        assert owner.pred_correct > 0
        assert owner.avg_miss_latency < base.avg_miss_latency
        # Single-target predictions: minimal bandwidth overhead.
        assert owner.avg_predicted_targets == 1.0
