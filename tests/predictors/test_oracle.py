"""Tests for the oracle predictor."""

from repro.coherence.directory import Directory
from repro.coherence.protocol import MissKind
from repro.predictors.oracle import OraclePredictor

N = 16


class TestOraclePredictor:
    def test_predicts_exact_read_responder(self):
        d = Directory(N)
        d.record_exclusive_fill(32, requester=3, dirty=True)
        oracle = OraclePredictor(d)
        assert oracle.predict(0, 32, 0, MissKind.READ).targets == {3}

    def test_predicts_all_sharers_for_writes(self):
        d = Directory(N)
        d.record_exclusive_fill(32, requester=3, dirty=False)
        d.record_read_fill(32, requester=4)
        oracle = OraclePredictor(d)
        assert oracle.predict(0, 32, 0, MissKind.WRITE).targets == {3, 4}

    def test_excludes_requester_from_write_set(self):
        d = Directory(N)
        d.record_exclusive_fill(32, requester=3, dirty=False)
        d.record_read_fill(32, requester=0)
        oracle = OraclePredictor(d)
        assert oracle.predict(0, 32, 0, MissKind.UPGRADE).targets == {3}

    def test_silent_on_noncommunicating_miss(self):
        oracle = OraclePredictor(Directory(N))
        assert oracle.predict(0, 32, 0, MissKind.READ) is None

    def test_train_is_noop(self):
        oracle = OraclePredictor(Directory(N))
        oracle.train(0, 32, 0, MissKind.READ, None)  # must not raise
