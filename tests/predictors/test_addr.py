"""Tests for the macroblock-indexed ADDR predictor."""

from repro.coherence.protocol import MissKind
from repro.predictors.addr import AddrPredictor
from repro.predictors.base import PredictionSource
from tests.core.test_predictor import read_result, write_result

N = 16


class TestAddrPredictor:
    def test_unknown_block_predicts_nothing(self):
        pred = AddrPredictor(N)
        assert pred.predict(0, 100, 0, MissKind.READ) is None

    def test_learns_from_responses(self):
        pred = AddrPredictor(N)
        for _ in range(2):
            pred.train(0, 100, 0, MissKind.READ, read_result(0, 7))
        p = pred.predict(0, 100, 0, MissKind.READ)
        assert p.targets == {7}
        assert p.source is PredictionSource.TABLE

    def test_macroblock_spatial_locality(self):
        """Adjacent blocks in the same macroblock share an entry."""
        pred = AddrPredictor(N, blocks_per_macroblock=4)
        for _ in range(2):
            pred.train(0, 100, 0, MissKind.READ, read_result(0, 7))
        assert pred.predict(0, 101, 0, MissKind.READ).targets == {7}
        assert pred.predict(0, 104, 0, MissKind.READ) is None

    def test_learns_from_invalidations(self):
        pred = AddrPredictor(N)
        for _ in range(2):
            pred.train(0, 100, 0, MissKind.WRITE, write_result(0, {3, 5}))
        assert pred.predict(0, 100, 0, MissKind.WRITE).targets == {3, 5}

    def test_external_requests_train_the_observer(self):
        """A remote requester becomes a likely future destination."""
        pred = AddrPredictor(N)
        pred.observe_external(2, 100, requester=9)
        pred.observe_external(2, 100, requester=9)
        assert pred.predict(2, 100, 0, MissKind.READ).targets == {9}

    def test_external_self_request_ignored(self):
        pred = AddrPredictor(N)
        pred.observe_external(2, 100, requester=2)
        assert pred.predict(2, 100, 0, MissKind.READ) is None

    def test_tables_are_per_core(self):
        pred = AddrPredictor(N)
        for _ in range(2):
            pred.train(0, 100, 0, MissKind.READ, read_result(0, 7))
        assert pred.predict(1, 100, 0, MissKind.READ) is None

    def test_own_core_excluded_from_group(self):
        pred = AddrPredictor(N)
        pred.observe_external(2, 100, requester=9)
        pred.observe_external(2, 100, requester=9)
        # Core 2's own entry must not predict core 2.
        p = pred.predict(2, 100, 0, MissKind.READ)
        assert 2 not in p.targets

    def test_capacity_cap(self):
        pred = AddrPredictor(N, max_entries=1)
        for _ in range(2):
            pred.train(0, 0, 0, MissKind.READ, read_result(0, 7))
        for _ in range(2):
            pred.train(0, 400, 0, MissKind.READ, read_result(0, 8))
        assert pred.predict(0, 0, 0, MissKind.READ) is None
        assert pred.predict(0, 400, 0, MissKind.READ).targets == {8}

    def test_storage_and_entry_counts(self):
        pred = AddrPredictor(N)
        pred.train(0, 0, 0, MissKind.READ, read_result(0, 7))
        pred.train(1, 512, 0, MissKind.READ, read_result(1, 7))
        assert pred.table_entries() == 2
        assert pred.storage_bits(N) == 2 * (32 + 37)
