"""Tests for communication-matrix analysis."""

import pytest

from repro.analysis.comm_matrix import (
    gini_coefficient,
    hotspot,
    matrix_of,
    render,
    summarize,
    symmetry_index,
    total_volume,
)
from repro.sim.engine import simulate
from repro.workloads.generator import build_workload
from repro.workloads.patterns import PatternKind
from tests.conftest import make_spec


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        assert gini_coefficient([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    def test_monotone_in_concentration(self):
        spread = gini_coefficient([3, 3, 2, 2])
        tight = gini_coefficient([9, 1, 0, 0])
        assert tight > spread


class TestSymmetry:
    def test_perfectly_symmetric(self):
        m = [[0, 5, 2], [5, 0, 1], [2, 1, 0]]
        assert symmetry_index(m) == pytest.approx(1.0)

    def test_one_directional(self):
        m = [[0, 5, 5], [0, 0, 5], [0, 0, 0]]
        assert symmetry_index(m) == pytest.approx(0.0)

    def test_empty_matrix(self):
        assert symmetry_index([[0, 0], [0, 0]]) == 1.0


class TestHotspot:
    def test_finds_heaviest_source(self):
        m = [[0, 1, 9], [0, 0, 9], [1, 1, 0]]
        core, share = hotspot(m)
        assert core == 2
        assert share == pytest.approx(18 / 21)

    def test_empty(self):
        assert hotspot([[0, 0], [0, 0]]) == (None, 0.0)


class TestSummarize:
    def test_mesif_forward_state_spreads_reduction_sourcing(self, small_machine):
        """Everyone consumes core 0's data, yet core 0 does NOT hotspot:
        the first leaf to read a block becomes its Forward holder and
        sources the next leaf, chaining responses across consumers.
        (One reason wide-sharing epochs grow larger hot sets.)"""
        spec = make_spec(PatternKind.REDUCTION, epochs=1, iterations=5)
        result = simulate(build_workload(spec), machine=small_machine)
        summary = summarize(result)
        assert summary.hotspot_share < 0.2
        assert summary.total_volume == total_volume(matrix_of(result))
        assert summary.pair_density > 0.25  # chaining touches many pairs

    def test_neighbor_pattern_is_sparse(self, small_machine):
        spec = make_spec(PatternKind.NEIGHBOR, epochs=1, iterations=5)
        result = simulate(build_workload(spec), machine=small_machine)
        summary = summarize(result)
        # Each core talks to ~2 others out of 15 possible.
        assert summary.pair_density < 0.35
        assert summary.gini > 0.5

    def test_random_pattern_is_denser_than_stable(self, small_machine):
        stable = simulate(
            build_workload(make_spec(PatternKind.STABLE, epochs=1,
                                     iterations=6)),
            machine=small_machine,
        )
        random_ = simulate(
            build_workload(make_spec(PatternKind.RANDOM, epochs=1,
                                     iterations=6)),
            machine=small_machine,
        )
        assert (
            summarize(random_).pair_density
            > summarize(stable).pair_density
        )


class TestRender:
    def test_shape(self):
        text = render([[0, 1], [2, 0]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "c0" in lines[0] and "c1" in lines[0]
