"""Tests for instance-pattern classification."""

from repro.analysis.patterns import (
    InstancePattern,
    classify_instances,
    classify_sequence,
)
from repro.core.signatures import Signature
from repro.sim.results import EpochRecord
from repro.sync.points import SyncKind

A = Signature({1})
B = Signature({2})
C = Signature({3})


def record(volumes, core=0, key=("pc", 1), instance=1):
    return EpochRecord(
        core=core, key=key, kind=SyncKind.BARRIER, instance=instance,
        volume_by_target=tuple(volumes), misses=sum(volumes),
        comm_misses=sum(volumes),
    )


class TestClassifySequence:
    def test_stable(self):
        assert classify_sequence([A, A, A, A]) == (InstancePattern.STABLE, None)

    def test_repetitive_stride2(self):
        pattern, period = classify_sequence([A, B, A, B, A, B])
        assert pattern is InstancePattern.REPETITIVE
        assert period == 2

    def test_repetitive_stride3(self):
        pattern, period = classify_sequence([A, B, C, A, B, C, A, B, C])
        assert pattern is InstancePattern.REPETITIVE
        assert period == 3

    def test_shifted_stable(self):
        pattern, _ = classify_sequence([A, A, A, B, B, B])
        assert pattern is InstancePattern.SHIFTED_STABLE

    def test_combined(self):
        seq = [Signature({1, 2}), Signature({1, 5}), Signature({1, 9}),
               Signature({1, 3})]
        pattern, _ = classify_sequence(seq)
        assert pattern is InstancePattern.COMBINED

    def test_random(self):
        seq = [A, B, C, Signature({9}), B, A, C]
        pattern, _ = classify_sequence(seq)
        assert pattern is InstancePattern.RANDOM

    def test_too_few(self):
        assert classify_sequence([A, B])[0] is InstancePattern.TOO_FEW


class TestClassifyInstances:
    def test_groups_by_core_and_key(self):
        records = []
        for instance in range(1, 6):
            records.append(record([0, 10, 0, 0], core=0, instance=instance))
            records.append(record([0, 0, 10, 0], core=1, instance=instance))
        reports = classify_instances(records)
        assert len(reports) == 2
        assert all(r.pattern is InstancePattern.STABLE for r in reports)

    def test_noisy_instances_excluded(self):
        records = [record([0, 100, 0, 0], instance=i) for i in range(1, 5)]
        # One near-empty instance that would break the stable pattern.
        records.append(record([0, 0, 0, 1], instance=5))
        reports = classify_instances(records, noise_fraction=0.25)
        assert reports[0].pattern is InstancePattern.STABLE
        assert reports[0].noisy_instances == 1

    def test_alternating_volumes_detected_as_repetitive(self):
        records = []
        for i in range(1, 9):
            vol = [0, 10, 0, 0] if i % 2 else [0, 0, 10, 0]
            records.append(record(vol, instance=i))
        reports = classify_instances(records)
        assert reports[0].pattern is InstancePattern.REPETITIVE
        assert reports[0].period == 2
