"""Tests for Table 1 epoch statistics."""

import pytest

from repro.analysis.epoch_stats import epoch_statistics
from repro.sim.engine import simulate
from repro.workloads.generator import build_workload
from repro.workloads.patterns import PatternKind
from tests.conftest import make_spec


class TestEpochStatistics:
    def test_requires_collection(self, small_machine, stable_workload):
        result = simulate(stable_workload, machine=small_machine)
        with pytest.raises(ValueError):
            epoch_statistics(result)

    def test_static_epoch_count(self, small_machine):
        spec = make_spec(PatternKind.STABLE, epochs=3, iterations=4)
        result = simulate(
            build_workload(spec), machine=small_machine, collect_epochs=True
        )
        stats = epoch_statistics(result)
        # 3 barrier PCs; the epoch before the first barrier has no identity.
        assert stats.static_sync_epochs == 3
        assert stats.static_critical_sections == 0

    def test_lock_epochs_counted_as_critical_sections(self, small_machine):
        spec = make_spec(PatternKind.PRIVATE, epochs=1, iterations=4, locks=2)
        result = simulate(
            build_workload(spec), machine=small_machine, collect_epochs=True
        )
        stats = epoch_statistics(result)
        assert stats.static_critical_sections == 2
        assert stats.dynamic_critical_sections_per_core > 0

    def test_dynamic_scales_with_iterations(self, small_machine):
        few = simulate(
            build_workload(make_spec(epochs=2, iterations=3)),
            machine=small_machine, collect_epochs=True,
        )
        many = simulate(
            build_workload(make_spec(epochs=2, iterations=9)),
            machine=small_machine, collect_epochs=True,
        )
        assert (
            epoch_statistics(many).dynamic_epochs_per_core
            > epoch_statistics(few).dynamic_epochs_per_core
        )

    def test_row_shape(self, small_machine):
        result = simulate(
            build_workload(make_spec()), machine=small_machine,
            collect_epochs=True,
        )
        row = epoch_statistics(result).row()
        assert set(row) == {
            "benchmark", "static_crit_sect", "static_sync_epochs",
            "dyn_epochs_per_core",
        }
