"""Tests for the terminal plotting helpers."""

import pytest

from repro.analysis.textplots import bar_chart, grouped_bars, scatter, sparkline


class TestBarChart:
    def test_bars_scale_with_values(self):
        out = bar_chart(["a", "b"], [1.0, 0.5], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        out = bar_chart(["x", "longer"], [1, 1])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_title_first(self):
        out = bar_chart(["a"], [1], title="My Plot")
        assert out.splitlines()[0] == "My Plot"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_empty(self):
        assert bar_chart([], [], title="t") == "t"

    def test_explicit_max(self):
        out = bar_chart(["a"], [0.5], width=10, max_value=1.0)
        assert out.count("#") == 5

    def test_values_rendered(self):
        assert "0.250" in bar_chart(["a"], [0.25])


class TestGroupedBars:
    def test_one_subrow_per_series(self):
        out = grouped_bars(["w1", "w2"], {"dir": [1, 1], "sp": [0.5, 0.9]})
        assert len(out.splitlines()) == 4

    def test_series_length_checked(self):
        with pytest.raises(ValueError):
            grouped_bars(["a"], {"s": [1, 2]})


class TestScatter:
    def test_markers_placed_at_extremes(self):
        out = scatter(
            [(0, 0, "A"), (10, 10, "B")], width=20, height=10,
        )
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert "A" in lines[-1]   # bottom-left
        assert "B" in lines[0]    # top-right

    def test_degenerate_single_point(self):
        out = scatter([(5, 5, "X")], width=10, height=5)
        assert "X" in out

    def test_empty(self):
        assert scatter([], title="t") == "t"

    def test_axis_annotations(self):
        out = scatter([(0, 0, "A"), (1, 2, "B")], x_label="bw", y_label="ind")
        assert "bw" in out and "ind" in out


class TestSparkline:
    def test_monotone_values(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == " " and line[-1] == "@"

    def test_flat_values(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_downsampling(self):
        assert len(sparkline(range(100), width=10)) == 10

    def test_empty(self):
        assert sparkline([]) == ""


class TestCliPlots:
    def test_plot_flag_renders_bars(self, capsys):
        from repro.experiments.__main__ import main

        main(["fig1", "--scale", "0.05", "--quiet", "--plot"])
        out = capsys.readouterr().out
        assert "comm_ratio" in out
        assert "#" in out
