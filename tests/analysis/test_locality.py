"""Tests for locality analysis."""

import pytest

from repro.analysis.locality import (
    average_cumulative_coverage,
    coverage_by_granularity,
    cumulative_coverage,
    hot_set_size_distribution,
)
from repro.sim.engine import simulate
from repro.sim.results import EpochRecord
from repro.sync.points import SyncKind
from repro.workloads.generator import build_workload
from repro.workloads.patterns import PatternKind
from tests.conftest import make_spec


def record(volumes, core=0, instance=1):
    return EpochRecord(
        core=core, key=("pc", 1), kind=SyncKind.BARRIER, instance=instance,
        volume_by_target=tuple(volumes), misses=sum(volumes),
        comm_misses=sum(volumes),
    )


class TestCumulativeCoverage:
    def test_perfectly_local(self):
        assert cumulative_coverage([10, 0, 0]) == [1.0, 1.0, 1.0]

    def test_uniform(self):
        curve = cumulative_coverage([5, 5, 5, 5])
        assert curve == [0.25, 0.5, 0.75, 1.0]

    def test_sorted_descending(self):
        curve = cumulative_coverage([1, 9, 0])
        assert curve[0] == pytest.approx(0.9)

    def test_zero_volume(self):
        assert cumulative_coverage([0, 0]) == [0.0, 0.0]

    def test_average_skips_empty(self):
        avg = average_cumulative_coverage([[10, 0], [0, 0]])
        assert avg == [1.0, 1.0]

    def test_average_empty_input(self):
        assert average_cumulative_coverage([]) == []

    def test_average_requires_equal_widths(self):
        with pytest.raises(ValueError):
            average_cumulative_coverage([[1, 2], [1, 2, 3]])


class TestHotSetDistribution:
    def test_sizes_histogrammed(self):
        records = [
            record([0, 100, 0, 0]),
            record([0, 50, 50, 0]),
            record([0, 50, 50, 0]),
        ]
        dist = hot_set_size_distribution(records)
        assert dist[1] == pytest.approx(1 / 3)
        assert dist[2] == pytest.approx(2 / 3)

    def test_zero_volume_records_skipped(self):
        assert hot_set_size_distribution([record([0, 0])]) == {}

    def test_self_core_excluded(self):
        dist = hot_set_size_distribution([record([100, 10], core=0)])
        assert dist == {1: 1.0}


class TestCoverageByGranularity:
    def test_requires_collection(self, small_machine, stable_workload):
        result = simulate(stable_workload, machine=small_machine)
        with pytest.raises(ValueError):
            coverage_by_granularity(result)

    def test_three_curves_produced(self, small_machine):
        spec = make_spec(PatternKind.STABLE, epochs=2, iterations=5)
        result = simulate(
            build_workload(spec), machine=small_machine, collect_epochs=True
        )
        curves = coverage_by_granularity(result)
        assert set(curves) == {
            "sync-epoch", "single-interval", "static instruction",
        }
        for curve in curves.values():
            assert len(curve) == 16
            assert curve[-1] == pytest.approx(1.0)

    def test_epoch_locality_dominates_whole_run(self, small_machine):
        """The paper's central characterization claim (Fig. 4)."""
        spec = make_spec(PatternKind.STRIDE, stride=3, epochs=2, iterations=9)
        result = simulate(
            build_workload(spec), machine=small_machine, collect_epochs=True
        )
        curves = coverage_by_granularity(result)
        epoch = curves["sync-epoch"]
        whole = curves["single-interval"]
        assert epoch[0] >= whole[0]
        assert epoch[1] >= whole[1]
