"""Tests for the cross-protocol differential equivalence checker."""

import pytest

from repro.check.differential import (
    DiffReport,
    check_workload,
    compare_summaries,
    run_differential,
)
from repro.check.lockstep import (
    LockstepRunner,
    machine_for_cores,
    run_lockstep,
)
from repro.coherence.protocol import DirectoryProtocol
from repro.workloads.suite import load_benchmark

SCALE = 0.02


class TestLockstep:
    def test_deterministic_across_runs(self):
        wl = load_benchmark("x264", scale=SCALE)
        a = run_lockstep(wl, protocol="directory")
        b = run_lockstep(wl, protocol="directory")
        assert compare_summaries(a, b) is None
        assert [t.functional_key() for t in a.tx_log] == [
            t.functional_key() for t in b.tx_log
        ]

    def test_summary_counters_add_up(self):
        wl = load_benchmark("lu", scale=SCALE)
        summary = run_lockstep(wl)
        totals = summary.counters()
        assert totals["reads"] + totals["writes"] + totals["upgrades"] == (
            summary.transactions
        )
        assert totals["comm"] <= summary.transactions

    def test_protocols_agree_on_one_workload(self):
        wl = load_benchmark("x264", scale=SCALE)
        divergences = check_workload(
            wl,
            protocols=("directory", "broadcast", "multicast", "limited"),
            predictors=("none",),
        )
        assert divergences == []

    def test_predictors_do_not_change_functional_behavior(self):
        wl = load_benchmark("radiosity", scale=SCALE)
        divergences = check_workload(
            wl,
            protocols=("directory",),
            predictors=("none", "SP", "ORACLE"),
        )
        assert divergences == []


class TestRunDifferential:
    def test_quick_grid_passes(self):
        report = run_differential(
            workloads=["x264", "lu"],
            protocols=("directory", "broadcast", "limited"),
            predictors=("none", "SP"),
            scale=SCALE,
        )
        assert isinstance(report, DiffReport)
        assert report.passed
        assert report.cells == 2 * 3 * 2
        assert report.transactions > 0
        payload = report.to_dict()
        assert payload["passed"] is True
        assert payload["cells"] == report.cells

    def test_injected_bug_is_caught(self, monkeypatch):
        """A protocol mutation must surface as divergence AND sanitizer
        violations — the acceptance-criteria scenario."""
        orig = DirectoryProtocol._apply_write_invalidations

        def buggy(self, core, block, minimal):
            if len(minimal) > 1:  # skip invalidating the highest target
                minimal = frozenset(minimal) - {max(minimal)}
            return orig(self, core, block, minimal)

        monkeypatch.setattr(
            DirectoryProtocol, "_apply_write_invalidations", buggy
        )
        # radiosity's sharing pattern produces multi-target invalidation
        # sets, which the mutation needs in order to misbehave.
        report = run_differential(
            workloads=["radiosity"],
            protocols=("broadcast", "directory"),
            predictors=("none",),
            scale=SCALE,
        )
        assert not report.passed
        # The sanitizer sees the stale copy the skipped invalidation left.
        assert report.violations
        cell, record = report.violations[0]
        assert "radiosity" in cell
        assert record.rule
        # And the differential comparison sees the two backends disagree.
        assert report.divergences
        divergence = report.divergences[0]
        assert divergence.field_name
        assert divergence.detail

    def test_divergence_report_names_first_transaction(self, monkeypatch):
        orig = DirectoryProtocol._apply_write_invalidations

        def buggy(self, core, block, minimal):
            if len(minimal) > 1:
                minimal = frozenset(minimal) - {max(minimal)}
            return orig(self, core, block, minimal)

        monkeypatch.setattr(
            DirectoryProtocol, "_apply_write_invalidations", buggy
        )
        wl = load_benchmark("radiosity", scale=SCALE)
        divergences = check_workload(
            wl,
            protocols=("broadcast", "directory"),
            predictors=("none",),
            sanitize=False,
        )
        assert divergences
        detail = divergences[0].detail
        # The report shows the diverging transaction with context lines.
        assert "ref " in detail
        assert "cand" in detail


class TestCompareSummaries:
    def test_detects_final_state_difference(self):
        wl = load_benchmark("x264", scale=SCALE)
        machine = machine_for_cores(wl.num_cores)
        a = LockstepRunner(wl, machine=machine).run()
        b = LockstepRunner(wl, machine=machine).run()
        # Corrupt one cache snapshot: must be reported as a divergence.
        for block in list(b.caches[0]):
            b.caches[0][block] = "INVALID"
            break
        mismatch = compare_summaries(a, b)
        assert mismatch is not None
        field_name, _detail = mismatch
        assert field_name == "final_cache_state"

    def test_detects_truncated_tx_log(self):
        wl = load_benchmark("x264", scale=SCALE)
        a = run_lockstep(wl)
        b = run_lockstep(wl)
        b.tx_log.pop()
        mismatch = compare_summaries(a, b)
        assert mismatch is not None
        assert mismatch[0] == "transaction_count"


@pytest.mark.parametrize("protocol", ["broadcast", "multicast", "limited"])
def test_each_backend_matches_directory_reference(protocol):
    wl = load_benchmark("streamcluster", scale=SCALE)
    divergences = check_workload(
        wl, protocols=("directory", protocol), predictors=("none",)
    )
    assert divergences == []
