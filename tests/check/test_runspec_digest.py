"""Regression pins for RunSpec cache keys, and sanitize x pool composition.

The digest is the persistent disk-cache key: if it drifts for an
unchanged configuration, every cached sweep result silently invalidates
(or worse, collides).  These tests pin the digest of a known
configuration under a fixed code fingerprint, so any change to the key
material — field order, serialization, CACHE_VERSION — fails loudly
here and forces a deliberate update.
"""

import pytest

import repro.runner.specs as specs
from repro.runner.pool import SweepRunner
from repro.runner.specs import CACHE_VERSION, RunSpec
from repro.sim.machine import MachineConfig

#: sha256 digest of the fixture spec below under CACHE_VERSION 4 and a
#: code fingerprint of "ffffffffffffffff".  Recompute ONLY when the key
#: material changes on purpose (and bump CACHE_VERSION when you do).
#: (v3: ``MachineConfig.quantum`` widened the machine repr; v4: vector
#: engine cross-quantum fusion — defensive retirement of pre-sweep
#: caches, key material otherwise unchanged.)
PINNED_DIGEST = (
    "cf301d82ce9bd6f95ead1fee6a495cbb49d2c3af32066807124f604fc9676694"
)
PINNED_SANITIZE_DIGEST = (
    "cb827cc397b474643059e4d502706406b20853ac35ae4b68e863e37f6f32ee5c"
)


@pytest.fixture
def fixed_fingerprint(monkeypatch):
    monkeypatch.setattr(specs, "code_fingerprint", lambda: "f" * 16)


def fixture_spec(**overrides) -> RunSpec:
    base = dict(
        workload="x264",
        scale=0.05,
        protocol="directory",
        predictor="SP",
        collect_epochs=False,
        max_entries=None,
        seed=7,
        machine=MachineConfig.small(),
    )
    base.update(overrides)
    return RunSpec(**base)


class TestDigestStability:
    def test_cache_version_is_pinned(self):
        assert CACHE_VERSION == 4

    def test_known_config_has_known_digest(self, fixed_fingerprint):
        assert fixture_spec().digest() == PINNED_DIGEST

    def test_sanitize_variant_has_known_digest(self, fixed_fingerprint):
        assert (
            fixture_spec(sanitize=True).digest() == PINNED_SANITIZE_DIGEST
        )

    def test_digest_is_pure(self, fixed_fingerprint):
        spec = fixture_spec()
        assert spec.digest() == spec.digest()

    def test_sanitize_flag_changes_digest(self, fixed_fingerprint):
        assert (
            fixture_spec().digest() != fixture_spec(sanitize=True).digest()
        )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("workload", "lu"),
            ("scale", 0.1),
            ("protocol", "broadcast"),
            ("predictor", "ADDR"),
            ("collect_epochs", True),
            ("max_entries", 512),
            ("seed", 8),
        ],
    )
    def test_every_field_feeds_the_digest(
        self, fixed_fingerprint, field, value
    ):
        assert fixture_spec().digest() != fixture_spec(**{field: value}).digest()

    def test_code_fingerprint_feeds_the_digest(self, monkeypatch):
        spec = fixture_spec()
        monkeypatch.setattr(specs, "code_fingerprint", lambda: "a" * 16)
        one = spec.digest()
        monkeypatch.setattr(specs, "code_fingerprint", lambda: "b" * 16)
        assert spec.digest() != one


class TestSanitizeInThePool:
    def test_sanitize_composes_with_parallel_jobs(self):
        """--sanitize must survive the worker-pool path: the spec flag
        reaches the engine in the worker and the violations/checks ride
        home through the serialized payload."""
        specs_to_run = [
            RunSpec(
                workload=name,
                scale=0.01,
                machine=MachineConfig.small(),
                sanitize=True,
            )
            for name in ("x264", "lu")
        ]
        runner = SweepRunner(jobs=2, disk=None)
        results = runner.run_many(specs_to_run)
        assert runner.simulations == 2
        for result in results:
            assert result.sanitizer_checks == result.misses > 0
            assert result.sanitizer_violations == []

    def test_parallel_and_serial_sanitize_runs_agree(self):
        spec = RunSpec(
            workload="x264",
            scale=0.01,
            machine=MachineConfig.small(),
            sanitize=True,
        )
        serial = SweepRunner(jobs=1, disk=None).run(spec)
        # jobs=2 with two pending specs forces the pool path; the second
        # spec is a throwaway to get past the single-spec serial shortcut.
        other = RunSpec(
            workload="lu",
            scale=0.01,
            machine=MachineConfig.small(),
            sanitize=True,
        )
        pooled = SweepRunner(jobs=2, disk=None).run_many([spec, other])[0]
        assert pooled.to_dict() == serial.to_dict()
