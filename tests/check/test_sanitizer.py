"""Unit tests for the structured coherence sanitizer."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.directory import Directory
from repro.coherence.protocol import DirectoryProtocol, ProtocolLatencies
from repro.coherence.states import Mesif
from repro.coherence.verify import (
    RULE_DIR_CACHE_MISMATCH,
    RULE_DIRTY_MISMATCH,
    RULE_DOUBLE_FORWARD,
    RULE_MULTIPLE_WRITERS,
    RULE_OWNER_MISMATCH,
    CoherenceVerifier,
    CoherenceViolation,
    ViolationRecord,
)
from repro.noc.network import Network
from repro.noc.topology import Mesh2D

N = 4
BLOCK = 32


@pytest.fixture
def proto() -> DirectoryProtocol:
    hiers = [
        PrivateHierarchy(
            c,
            l1=CacheConfig(size=256, assoc=1, line_size=64),
            l2=CacheConfig(size=2048, assoc=2, line_size=64),
        )
        for c in range(N)
    ]
    return DirectoryProtocol(
        hiers, Directory(N), Network(Mesh2D(2, 2)), ProtocolLatencies()
    )


def rules_of(found):
    return {v.rule for v in found}


class TestViolationClasses:
    def test_clean_state_has_no_violations(self, proto):
        proto.write_miss(0, BLOCK)
        proto.read_miss(1, BLOCK)
        verifier = CoherenceVerifier(proto, record=True)
        assert verifier.check_block(BLOCK) == []
        assert verifier.violations == []
        assert verifier.checks == 1

    def test_two_writers(self, proto):
        proto.write_miss(0, BLOCK)
        # Corrupt: a second cache acquires a writable copy behind the
        # directory's back.
        proto.hierarchies[1].fill(BLOCK, Mesif.MODIFIED)
        verifier = CoherenceVerifier(proto, record=True)
        found = verifier.check_block(BLOCK)
        assert RULE_MULTIPLE_WRITERS in rules_of(found)
        record = next(
            v for v in found if v.rule == RULE_MULTIPLE_WRITERS
        )
        # Protocol-agnostic message: core IDs and MESIF state names.
        assert "core 0 in MODIFIED" in record.message
        assert "core 1 in MODIFIED" in record.message

    def test_stale_directory_sharer(self, proto):
        proto.read_miss(0, BLOCK)
        # Corrupt: a cache holds a copy the directory does not know about.
        proto.hierarchies[2].fill(BLOCK, Mesif.SHARED)
        verifier = CoherenceVerifier(proto, record=True)
        found = verifier.check_block(BLOCK)
        assert RULE_DIR_CACHE_MISMATCH in rules_of(found)
        record = next(
            v for v in found if v.rule == RULE_DIR_CACHE_MISMATCH
        )
        assert "core 2 in SHARED" in record.message
        assert "sharers" in record.message

    def test_double_forward(self, proto):
        proto.write_miss(1, BLOCK)
        proto.read_miss(0, BLOCK)  # core 0 takes F
        # Corrupt: a second Forward copy appears.
        proto.hierarchies[2].fill(BLOCK, Mesif.FORWARD)
        verifier = CoherenceVerifier(proto, record=True)
        found = verifier.check_block(BLOCK)
        assert RULE_DOUBLE_FORWARD in rules_of(found)
        record = next(v for v in found if v.rule == RULE_DOUBLE_FORWARD)
        assert "Forward copies at core 0, core 2" in record.message

    def test_owner_mismatch(self, proto):
        proto.write_miss(0, BLOCK)
        # Corrupt: directory forgets the owner but the cache still writes.
        proto.directory.entry(BLOCK).owner = None
        verifier = CoherenceVerifier(proto, record=True)
        found = verifier.check_block(BLOCK)
        assert RULE_OWNER_MISMATCH in rules_of(found)
        record = next(v for v in found if v.rule == RULE_OWNER_MISMATCH)
        assert "core 0" in record.message
        assert "nobody" in record.message

    def test_dirty_mismatch(self, proto):
        proto.write_miss(0, BLOCK)
        proto.directory.entry(BLOCK).dirty = False
        verifier = CoherenceVerifier(proto, record=True)
        found = verifier.check_block(BLOCK)
        assert RULE_DIRTY_MISMATCH in rules_of(found)


class TestModes:
    def test_raise_mode_raises_first_violation(self, proto):
        proto.write_miss(0, BLOCK)
        proto.hierarchies[1].fill(BLOCK, Mesif.MODIFIED)
        verifier = CoherenceVerifier(proto)  # positional, raise mode
        with pytest.raises(CoherenceViolation):
            verifier.check_block(BLOCK)

    def test_record_mode_keeps_running(self, proto):
        proto.write_miss(0, BLOCK)
        proto.hierarchies[1].fill(BLOCK, Mesif.MODIFIED)
        verifier = CoherenceVerifier(proto, record=True)
        first = verifier.check_block(BLOCK, transaction=7)
        again = verifier.check_block(BLOCK, transaction=8)
        assert first and again
        assert verifier.checks == 2
        assert len(verifier.violations) == len(first) + len(again)
        assert first[0].transaction == 7
        assert again[0].transaction == 8

    def test_record_mode_caps_records(self, proto):
        proto.write_miss(0, BLOCK)
        proto.hierarchies[1].fill(BLOCK, Mesif.MODIFIED)
        verifier = CoherenceVerifier(proto, record=True, max_records=3)
        for tx in range(10):
            verifier.check_block(BLOCK, transaction=tx)
        assert len(verifier.violations) == 3
        assert verifier.checks == 10

    def test_report_counts_by_rule(self, proto):
        proto.write_miss(0, BLOCK)
        proto.hierarchies[1].fill(BLOCK, Mesif.MODIFIED)
        verifier = CoherenceVerifier(proto, record=True)
        verifier.check_block(BLOCK)
        report = verifier.report()
        assert report["checks"] == 1
        assert report["violations"] == len(verifier.violations)
        assert report["by_rule"][RULE_MULTIPLE_WRITERS] == 1
        assert report["records"][0]["rule"]


class TestViolationRecord:
    def test_dict_round_trip(self):
        record = ViolationRecord(
            rule=RULE_MULTIPLE_WRITERS,
            block=0x40,
            transaction=12,
            expected="at most one writable copy",
            actual="writable copies at core 0 in MODIFIED, core 3 in MODIFIED",
        )
        assert ViolationRecord.from_dict(record.to_dict()) == record

    def test_message_includes_block_and_transaction(self):
        record = ViolationRecord(
            rule=RULE_DIRTY_MISMATCH, block=0x80, transaction=5,
            expected="e", actual="a",
        )
        assert "block 0x80" in record.message
        assert "#5" in record.message
        assert RULE_DIRTY_MISMATCH in record.message


class TestEngineSanitize:
    def test_clean_run_records_checks_and_no_violations(self):
        from repro.sim.engine import simulate
        from repro.workloads.suite import load_benchmark

        wl = load_benchmark("x264", scale=0.01)
        result = simulate(wl, protocol="directory", sanitize=True)
        assert result.sanitizer_checks == result.misses > 0
        assert result.sanitizer_violations == []

    def test_sanitize_survives_result_round_trip(self, proto):
        from repro.sim.results import SimulationResult

        result = SimulationResult(
            workload="w", protocol="directory", predictor="none", num_cores=4
        )
        result.sanitizer_checks = 9
        result.sanitizer_violations = [
            ViolationRecord(
                rule=RULE_DIR_CACHE_MISMATCH, block=1, transaction=2,
                expected="e", actual="a",
            )
        ]
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt.sanitizer_checks == 9
        assert rebuilt.sanitizer_violations == result.sanitizer_violations
