"""Tests for the trace fuzzer, the shrinker, and case replay."""

import json

import pytest

from repro.check.case import load_case, replay_case, save_case
from repro.check.fuzz import run_case, run_fuzz
from repro.check.shrink import shrink_case
from repro.coherence.protocol import DirectoryProtocol
from repro.workloads.base import OP_SYNC, Workload
from repro.workloads.fuzz import (
    FuzzConfig,
    generate_fuzz_case,
    well_formed,
)

#: Small shape so a test fuzz batch runs in seconds.
SMALL = FuzzConfig(
    num_cores=4, segment_events=20, barrier_rounds=2, storm_blocks=48
)


@pytest.fixture
def inject_bug(monkeypatch):
    """Directory write invalidations skip the highest-numbered target."""
    orig = DirectoryProtocol._apply_write_invalidations

    def buggy(self, core, block, minimal):
        if len(minimal) > 1:
            minimal = frozenset(minimal) - {max(minimal)}
        return orig(self, core, block, minimal)

    monkeypatch.setattr(
        DirectoryProtocol, "_apply_write_invalidations", buggy
    )


class TestGenerator:
    def test_same_seed_same_trace(self):
        a = generate_fuzz_case(42, SMALL)
        b = generate_fuzz_case(42, SMALL)
        assert a.workload.events == b.workload.events
        assert a.migrations == b.migrations

    def test_different_seeds_differ(self):
        a = generate_fuzz_case(1, SMALL)
        b = generate_fuzz_case(2, SMALL)
        assert a.workload.events != b.workload.events

    @pytest.mark.parametrize("seed", range(20))
    def test_generated_traces_are_well_formed(self, seed):
        fc = generate_fuzz_case(seed, SMALL)
        assert well_formed(fc.workload)

    def test_generated_traces_run_cleanly(self):
        for seed in range(6):
            fc = generate_fuzz_case(seed, SMALL)
            assert run_case(fc.workload, fc.migrations) is None

    def test_well_formed_rejects_unbalanced_locks(self):
        from repro.sync.points import SyncKind

        wl = Workload(name="bad", num_cores=2, events=[
            [(OP_SYNC, SyncKind.LOCK, 0xAC00, 0x100000)],
            [],
        ])
        assert not well_formed(wl)

    def test_well_formed_rejects_lock_across_barrier(self):
        from repro.sync.points import SyncKind

        wl = Workload(name="bad", num_cores=2, events=[
            [
                (OP_SYNC, SyncKind.LOCK, 0xAC00, 0x100000),
                (OP_SYNC, SyncKind.BARRIER, 0xB000, None),
                (OP_SYNC, SyncKind.UNLOCK, 0xAC00, 0x100000),
            ],
            [(OP_SYNC, SyncKind.BARRIER, 0xB000, None)],
        ])
        assert not well_formed(wl)

    def test_well_formed_rejects_mismatched_barrier_pcs(self):
        from repro.sync.points import SyncKind

        wl = Workload(name="bad", num_cores=2, events=[
            [(OP_SYNC, SyncKind.BARRIER, 0xB000, None)],
            [(OP_SYNC, SyncKind.BARRIER, 0xB001, None)],
        ])
        assert not well_formed(wl)


class TestFuzzBatch:
    def test_clean_protocols_pass_a_batch(self):
        report = run_fuzz(seed=100, cases=4, config=SMALL, shrink=False)
        assert report.passed
        assert report.cases == 4
        assert report.failures == []

    def test_injected_bug_is_found_and_shrunk(self, inject_bug, tmp_path):
        report = run_fuzz(
            seed=0, cases=2, config=SMALL, out_dir=str(tmp_path)
        )
        assert not report.passed
        failure = report.failures[0]
        assert failure.failure.kind in ("sanitizer", "divergence")
        # Shrinking must make real progress on a ~500-event trace.
        assert failure.shrunk_events < failure.original_events
        assert failure.shrunk_events <= 10
        assert failure.case_path is not None
        # The saved case is valid JSON with the failure embedded.
        doc = json.loads(open(failure.case_path).read())
        assert doc["format"] == "repro-check-case"
        assert doc["failure"]["kind"] == failure.failure.kind

    def test_shrunk_case_replays_deterministically(
        self, inject_bug, tmp_path
    ):
        report = run_fuzz(
            seed=0, cases=1, config=SMALL, out_dir=str(tmp_path)
        )
        assert report.failures
        path = report.failures[0].case_path
        first = replay_case(path)
        second = replay_case(path)
        assert first is not None
        assert first.to_dict() == second.to_dict()

    def test_replay_passes_once_bug_is_fixed(self, tmp_path):
        # Generate the reproducer under the bug...
        orig = DirectoryProtocol._apply_write_invalidations

        def buggy(self, core, block, minimal):
            if len(minimal) > 1:
                minimal = frozenset(minimal) - {max(minimal)}
            return orig(self, core, block, minimal)

        DirectoryProtocol._apply_write_invalidations = buggy
        try:
            report = run_fuzz(
                seed=0, cases=1, config=SMALL, out_dir=str(tmp_path)
            )
        finally:
            DirectoryProtocol._apply_write_invalidations = orig
        assert report.failures
        # ...then replay against the fixed protocol: clean.
        assert replay_case(report.failures[0].case_path) is None

    def test_fuzz_report_serializes(self, inject_bug, tmp_path):
        report = run_fuzz(
            seed=0, cases=1, config=SMALL, out_dir=str(tmp_path)
        )
        payload = report.to_dict()
        assert payload["passed"] is False
        assert payload["failures"][0]["seed"] == 0
        json.dumps(payload)  # JSON-safe


class TestShrinker:
    def test_shrink_is_deterministic(self, inject_bug):
        fc = generate_fuzz_case(0, SMALL)

        def still_fails(candidate):
            return well_formed(candidate) and (
                run_case(candidate, fc.migrations) is not None
            )

        assert run_case(fc.workload, fc.migrations) is not None
        a = shrink_case(fc.workload, still_fails)
        b = shrink_case(fc.workload, still_fails)
        assert a.events == b.events

    def test_shrink_preserves_failure(self, inject_bug):
        fc = generate_fuzz_case(0, SMALL)

        def still_fails(candidate):
            return well_formed(candidate) and (
                run_case(candidate, fc.migrations) is not None
            )

        shrunk = shrink_case(fc.workload, still_fails)
        assert well_formed(shrunk)
        assert run_case(shrunk, fc.migrations) is not None

    def test_shrink_keeps_workload_untouched_when_nothing_helps(self):
        wl = Workload(name="w", num_cores=2, events=[
            [(0, 0, 1)], [(1, 0, 2)],
        ])
        shrunk = shrink_case(wl, lambda w: False)
        assert shrunk.events == wl.events


class TestCaseFiles:
    def test_case_round_trip(self, tmp_path):
        fc = generate_fuzz_case(7, SMALL)
        path = save_case(
            str(tmp_path),
            workload=fc.workload,
            migrations=fc.migrations,
            seed=7,
            protocols=("directory", "broadcast"),
            predictors=("none",),
        )
        workload, migrations, doc = load_case(path)
        assert workload.events == fc.workload.events
        assert workload.num_cores == fc.workload.num_cores
        assert migrations == fc.migrations
        assert doc["protocols"] == ["directory", "broadcast"]

    def test_load_rejects_non_case_files(self, tmp_path):
        path = tmp_path / "not-a-case.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_case(path)


class TestForensicsCell:
    """The attribution-conservation cell of the engine-path grid."""

    def test_clean_trace_passes_forensics_cell(self):
        # run_case already covers this (fourth engine config), but pin
        # it explicitly: attribution on the vector path must neither
        # perturb counters nor lose a mispredict.
        fc = generate_fuzz_case(11, SMALL)
        assert run_case(fc.workload, fc.migrations) is None

    def test_lost_attribution_is_a_forensics_failure(self, monkeypatch):
        # A collector that silently drops every outcome breaks the
        # conservation law (taxonomy totals == counter-derived
        # mispredict universe); the fuzzer must flag it as a
        # "forensics" failure, not a crash or counter diff.
        from repro.obs import ForensicsCollector

        monkeypatch.setattr(
            ForensicsCollector, "on_outcome",
            lambda self, *args, **kwargs: None,
        )
        fc = generate_fuzz_case(11, SMALL)
        failure = run_case(fc.workload, fc.migrations)
        assert failure is not None
        assert failure.kind == "forensics"
        assert "mispredicts" in failure.detail

    def test_double_counting_is_a_forensics_failure(self, monkeypatch):
        # The dual corruption: every mispredict attributed twice.
        from repro.obs import ForensicsCollector

        orig = ForensicsCollector.on_outcome

        def doubled(self, *args, **kwargs):
            tax = orig(self, *args, **kwargs)
            if tax is not None:
                self.mispredicts += 1
                self.taxonomy[tax] += 1
            return tax

        monkeypatch.setattr(ForensicsCollector, "on_outcome", doubled)
        fc = generate_fuzz_case(11, SMALL)
        failure = run_case(fc.workload, fc.migrations)
        assert failure is not None
        assert failure.kind == "forensics"
