"""Wiring tests for the ingest frontend: conformance harness, RunSpec
``trace:`` specs, the differential sweep's trace legs, the fuzzer's
ingest cell, and machine fitting for arbitrary trace core counts."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.runner.specs as specs
import repro.traces.ingest as ingest_mod
from repro.check.differential import run_differential
from repro.check.fuzz import run_case
from repro.check.ingest import run_ingest_check
from repro.runner.pool import SweepRunner
from repro.runner.specs import TRACE_PREFIX, RunSpec
from repro.sim.machine import MachineConfig, fit_machine
from repro.traces.ingest import export_synchrotrace
from repro.workloads.fuzz import FuzzConfig, generate_fuzz_case
from repro.workloads.generator import build_workload
from repro.workloads.patterns import PatternKind
from tests.conftest import make_spec

CORPUS = Path(__file__).resolve().parents[2] / "tests/data/synchrotrace"
PINGPONG = CORPUS / "valid" / "lock-pingpong"


@pytest.fixture
def trace_dir(tmp_path):
    """A small exported SynchroTrace directory."""
    workload = build_workload(make_spec(PatternKind.STRIDE, iterations=2))
    out = tmp_path / "trace"
    export_synchrotrace(workload, out)
    return out


class TestConformanceHarness:
    def test_full_run_passes_and_serializes(self):
        report = run_ingest_check(
            workloads=["x264"], scale=0.02, seed=7, corpus=CORPUS
        )
        assert report.passed
        assert report.roundtrips == 1
        assert report.engine_cells == 3  # one cell x three engine paths
        assert report.valid_cases >= 3
        assert report.malformed_cases >= 4
        payload = report.to_dict()
        json.dumps(payload)  # JSON-safe (the CI artifact)
        assert payload["passed"] is True
        assert payload["issues"] == []


class TestTraceRunSpecs:
    def make(self, path, **overrides):
        base = dict(
            workload=f"{TRACE_PREFIX}{path}",
            scale=0.05,
            machine=MachineConfig.small(),
        )
        base.update(overrides)
        return RunSpec(**base)

    def test_digest_folds_trace_content(self, trace_dir, monkeypatch):
        monkeypatch.setattr(specs, "_trace_digest_cache", {})
        before = self.make(trace_dir).digest()
        first = trace_dir / "sigil.events.out-0"
        first.write_text(first.read_text() + "90000,0,1,0,0,0\n")
        monkeypatch.setattr(specs, "_trace_digest_cache", {})
        assert self.make(trace_dir).digest() != before

    def test_digest_is_stable_for_unchanged_trace(self, trace_dir):
        assert (
            self.make(trace_dir).digest() == self.make(trace_dir).digest()
        )

    def test_trace_spec_runs_through_the_pool(self, trace_dir):
        runner = SweepRunner(jobs=1, disk=None)
        result = runner.run(self.make(trace_dir))
        assert runner.simulations == 1
        assert result.misses > 0

    def test_scale_and_seed_are_inert_for_trace_specs(self, trace_dir):
        runner = SweepRunner(jobs=1, disk=None)
        a = runner.run(self.make(trace_dir, scale=0.05, seed=1))
        b = runner.run(self.make(trace_dir, scale=0.5, seed=2))
        assert a.to_dict() == b.to_dict()


class TestDifferentialTraceLeg:
    def test_trace_only_differential(self):
        report = run_differential(
            workloads=[],
            protocols=("directory", "broadcast"),
            predictors=("SP",),
            trace_paths=[PINGPONG],
        )
        assert report.passed
        assert str(PINGPONG) in report.workloads
        assert report.cells > 0

    def test_empty_workloads_without_traces_checks_nothing(self):
        report = run_differential(
            workloads=[],
            protocols=("directory",),
            predictors=("SP",),
        )
        assert report.workloads == ()
        assert report.cells == 0


class TestFuzzIngestCell:
    SMALL = FuzzConfig(
        num_cores=4, segment_events=20, barrier_rounds=2, storm_blocks=48
    )

    def test_clean_case_passes_the_ingest_cell(self):
        fc = generate_fuzz_case(3, self.SMALL)
        assert run_case(fc.workload, fc.migrations) is None

    def test_roundtrip_corruption_is_caught(self, monkeypatch):
        orig = ingest_mod.roundtrip_workload

        def corrupted(workload):
            reingested = orig(workload)
            reingested.events[0] = reingested.events[0][:-1]
            return reingested

        monkeypatch.setattr(ingest_mod, "roundtrip_workload", corrupted)
        fc = generate_fuzz_case(3, self.SMALL)
        failure = run_case(fc.workload, fc.migrations)
        assert failure is not None
        assert failure.kind == "ingest"
        assert failure.cell.startswith("ingest:")


class TestFitMachine:
    @pytest.mark.parametrize(
        "cores,dims",
        [(1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (6, (3, 2)),
         (7, (7, 1)), (8, (4, 2)), (16, (4, 4))],
    )
    def test_most_square_factorization(self, cores, dims):
        machine = fit_machine(cores)
        assert (machine.mesh_width, machine.mesh_height) == dims
        assert machine.num_cores == cores

    def test_rejects_empty_machines(self):
        with pytest.raises(ValueError):
            fit_machine(0)
