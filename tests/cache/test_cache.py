"""Tests for the set-associative cache."""

import pytest

from repro.cache.cache import Cache, CacheConfig


def make_cache(size=1024, assoc=2, line=64) -> Cache:
    return Cache(CacheConfig(size=size, assoc=assoc, line_size=line))


class TestCacheConfig:
    def test_geometry(self):
        cfg = CacheConfig(size=1024, assoc=2, line_size=64)
        assert cfg.num_sets == 8
        assert cfg.num_lines == 16

    def test_block_and_set_mapping(self):
        cfg = CacheConfig(size=1024, assoc=2, line_size=64)
        assert cfg.block_of(0) == 0
        assert cfg.block_of(63) == 0
        assert cfg.block_of(64) == 1
        assert cfg.set_of_block(8) == 0
        assert cfg.set_of_block(9) == 1

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1024, assoc=2, line_size=48)

    def test_rejects_misaligned_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, assoc=2, line_size=64)


class TestCacheOperations:
    def test_miss_then_fill_then_hit(self):
        cache = make_cache()
        assert cache.lookup(5) is None
        assert cache.fill(5, "S") is None
        assert cache.lookup(5).state == "S"

    def test_fill_existing_updates_state_without_eviction(self):
        cache = make_cache()
        cache.fill(5, "S")
        victim = cache.fill(5, "M")
        assert victim is None
        assert cache.lookup(5).state == "M"
        assert cache.occupancy() == 1

    def test_lru_eviction_order(self):
        cache = make_cache(size=256, assoc=2, line=64)  # 2 sets
        # Blocks 0, 2, 4 all map to set 0.
        cache.fill(0, "a")
        cache.fill(2, "b")
        victim = cache.fill(4, "c")
        assert victim.block == 0  # least recently used

    def test_touch_promotes_to_mru(self):
        cache = make_cache(size=256, assoc=2, line=64)
        cache.fill(0, "a")
        cache.fill(2, "b")
        cache.touch(0)  # 0 becomes MRU; 2 is now LRU
        victim = cache.fill(4, "c")
        assert victim.block == 2

    def test_lookup_does_not_change_recency(self):
        cache = make_cache(size=256, assoc=2, line=64)
        cache.fill(0, "a")
        cache.fill(2, "b")
        cache.lookup(0)  # no promotion
        victim = cache.fill(4, "c")
        assert victim.block == 0

    def test_invalidate_removes_line(self):
        cache = make_cache()
        cache.fill(7, "E")
        removed = cache.invalidate(7)
        assert removed.block == 7
        assert cache.lookup(7) is None

    def test_invalidate_absent_returns_none(self):
        cache = make_cache()
        assert cache.invalidate(99) is None

    def test_set_state(self):
        cache = make_cache()
        cache.fill(3, "S")
        assert cache.set_state(3, "M")
        assert cache.lookup(3).state == "M"
        assert not cache.set_state(4, "M")

    def test_occupancy_bounded_by_capacity(self):
        cache = make_cache(size=256, assoc=2, line=64)  # 4 lines total
        for block in range(32):
            cache.fill(block, "S")
        assert cache.occupancy() <= 4

    def test_resident_blocks_reflects_contents(self):
        cache = make_cache()
        for block in (1, 2, 3):
            cache.fill(block, "S")
        assert set(cache.resident_blocks()) == {1, 2, 3}

    def test_different_sets_do_not_conflict(self):
        cache = make_cache(size=256, assoc=2, line=64)
        cache.fill(0, "a")  # set 0
        cache.fill(1, "b")  # set 1
        cache.fill(2, "c")  # set 0
        cache.fill(3, "d")  # set 1
        assert cache.occupancy() == 4
