"""Tests for the private L1/L2 hierarchy."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import AccessKind, HierarchyOutcome, PrivateHierarchy
from repro.coherence.states import Mesif


def make_hier(core=0) -> PrivateHierarchy:
    return PrivateHierarchy(
        core,
        l1=CacheConfig(size=256, assoc=1, line_size=64),
        l2=CacheConfig(size=1024, assoc=2, line_size=64),
    )


class TestClassification:
    def test_cold_read_is_miss(self):
        hier = make_hier()
        assert hier.classify(0, AccessKind.READ) is HierarchyOutcome.MISS

    def test_fill_then_read_hits_l1(self):
        hier = make_hier()
        hier.fill(0, Mesif.EXCLUSIVE)
        assert hier.classify(0, AccessKind.READ) is HierarchyOutcome.L1_HIT

    def test_l2_hit_after_l1_eviction(self):
        hier = make_hier()
        hier.fill(0, Mesif.EXCLUSIVE)
        # Blocks 0 and 4 conflict in the 4-line direct-mapped L1 but not
        # in the larger L2 (classify takes byte addresses).
        hier.fill(4, Mesif.EXCLUSIVE)
        assert hier.classify(4 * 64, AccessKind.READ) is HierarchyOutcome.L1_HIT
        assert hier.classify(0, AccessKind.READ) is HierarchyOutcome.L2_HIT

    def test_write_to_shared_is_upgrade_miss(self):
        hier = make_hier()
        hier.fill(0, Mesif.SHARED)
        assert hier.classify(0, AccessKind.WRITE) is HierarchyOutcome.UPGRADE_MISS

    def test_write_to_forward_is_upgrade_miss(self):
        hier = make_hier()
        hier.fill(0, Mesif.FORWARD)
        assert hier.classify(0, AccessKind.WRITE) is HierarchyOutcome.UPGRADE_MISS

    def test_write_to_exclusive_hits_and_dirties(self):
        hier = make_hier()
        hier.fill(0, Mesif.EXCLUSIVE)
        outcome = hier.classify(0, AccessKind.WRITE)
        assert not outcome.is_miss
        assert hier.peek_state(0) is Mesif.MODIFIED

    def test_write_to_modified_hits(self):
        hier = make_hier()
        hier.fill(0, Mesif.MODIFIED)
        assert not hier.classify(0, AccessKind.WRITE).is_miss

    def test_byte_addresses_map_to_blocks(self):
        hier = make_hier()
        hier.fill(hier.block_of(130), Mesif.EXCLUSIVE)
        assert not hier.classify(130, AccessKind.READ).is_miss
        assert not hier.classify(190, AccessKind.READ).is_miss  # same block


class TestStateManagement:
    def test_invalidate_clears_both_levels(self):
        hier = make_hier()
        hier.fill(0, Mesif.MODIFIED)
        prior = hier.invalidate(0)
        assert prior is Mesif.MODIFIED
        assert hier.peek_state(0) is Mesif.INVALID
        assert hier.classify(0, AccessKind.READ) is HierarchyOutcome.MISS

    def test_invalidate_absent_returns_invalid(self):
        hier = make_hier()
        assert hier.invalidate(42) is Mesif.INVALID

    def test_set_state_requires_residency(self):
        hier = make_hier()
        with pytest.raises(KeyError):
            hier.set_state(9, Mesif.SHARED)

    def test_l2_eviction_invalidates_l1_copy(self):
        hier = make_hier()
        # 1 KB 2-way L2 = 8 sets; blocks 0, 16, 32 map to L2 set 0.
        hier.fill(0, Mesif.EXCLUSIVE)
        hier.fill(16, Mesif.EXCLUSIVE)
        victim = hier.fill(32, Mesif.EXCLUSIVE)
        assert victim is not None and victim.block == 0
        assert hier.classify(0, AccessKind.READ) is HierarchyOutcome.MISS

    def test_stats_accumulate(self):
        hier = make_hier()
        hier.classify(0, AccessKind.READ)
        hier.fill(0, Mesif.EXCLUSIVE)
        hier.classify(0, AccessKind.READ)
        assert hier.stats.accesses == 2
        assert hier.stats.misses == 1
        assert hier.stats.l1_hits == 1

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            PrivateHierarchy(
                0,
                l1=CacheConfig(size=256, assoc=1, line_size=32),
                l2=CacheConfig(size=1024, assoc=2, line_size=64),
            )
