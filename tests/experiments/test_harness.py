"""Tests for the experiment harness (run cache, tables, CLI wiring)."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import (
    ExperimentTable,
    RunCache,
    geometric_mean,
    make_predictor,
    render_table,
)
from repro.sim.machine import MachineConfig


@pytest.fixture(scope="module")
def cache():
    return RunCache(machine=MachineConfig(), scale=0.1)


class TestMakePredictor:
    def test_all_kinds(self):
        from repro.coherence.directory import Directory

        assert make_predictor("none", 16) is None
        for kind in ("SP", "ADDR", "INST", "UNI"):
            pred = make_predictor(kind, 16)
            assert pred.name == kind
        oracle = make_predictor("ORACLE", 16, directory=Directory(16))
        assert oracle.name == "ORACLE"

    def test_oracle_requires_directory(self):
        with pytest.raises(ValueError):
            make_predictor("ORACLE", 16)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("MAGIC", 16)

    def test_capacity_cap_forwarded(self):
        pred = make_predictor("ADDR", 16, max_entries=8)
        assert pred._tables[0].max_entries == 8


class TestRunCache:
    def test_same_key_returns_same_object(self, cache):
        a = cache.get("x264", predictor="none")
        b = cache.get("x264", predictor="none")
        assert a is b

    def test_collecting_run_serves_plain_requests(self, cache):
        collected = cache.get("lu", predictor="none", collect_epochs=True)
        plain = cache.get("lu", predictor="none", collect_epochs=False)
        assert plain is collected

    def test_predictor_name_recorded(self, cache):
        r = cache.get("x264", predictor="SP")
        assert r.predictor == "SP"

    def test_distinct_configs_distinct_runs(self, cache):
        a = cache.get("x264", predictor="none")
        b = cache.get("x264", protocol="broadcast", predictor="none")
        assert a is not b

    def test_suite_lists_all(self, cache):
        assert len(cache.suite()) == 17


class TestRendering:
    def test_render_table(self):
        table = ExperimentTable(
            experiment="Fig. X",
            title="demo",
            columns=["a", "b"],
            rows=[{"a": 1, "b": 0.5}, {"a": "xx", "b": 2.0}],
            notes=["hello"],
        )
        text = render_table(table)
        assert "Fig. X" in text
        assert "0.500" in text
        assert "note: hello" in text

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0, 2]) == pytest.approx(2.0)


class TestRegistry:
    def test_all_fourteen_experiments_registered(self):
        expected = {
            "fig1", "fig2", "table1", "fig4", "fig5", "fig6", "fig7",
            "table5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
        }
        assert set(EXPERIMENTS) == expected

    def test_modules_importable(self):
        import importlib

        for module_name in EXPERIMENTS.values():
            module = importlib.import_module(module_name)
            assert hasattr(module, "run")
