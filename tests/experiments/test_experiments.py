"""Smoke/shape tests for every experiment module at tiny scale.

These verify the experiments run end-to-end and produce rows with the
right schema; the *paper-shape* assertions live in the benchmarks (where
workloads run at representative scale).
"""

import importlib

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import RunCache
from repro.sim.machine import MachineConfig


@pytest.fixture(scope="module")
def cache():
    # One shared cache across all experiment smoke tests: tiny scale.
    return RunCache(machine=MachineConfig(), scale=0.1)


def run_experiment(exp_id, cache):
    module = importlib.import_module(EXPERIMENTS[exp_id])
    return module.run(cache)


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
def test_experiment_runs_and_renders(exp_id, cache):
    table = run_experiment(exp_id, cache)
    assert table.rows, exp_id
    text = table.render()
    assert table.experiment in text
    for col in table.columns:
        assert str(col) in text


class TestExperimentShapes:
    def test_fig1_has_all_benchmarks_plus_average(self, cache):
        table = run_experiment("fig1", cache)
        names = [r["benchmark"] for r in table.rows]
        assert len(names) == 18
        assert names[-1] == "average"
        for row in table.rows[:-1]:
            assert 0.0 <= row["comm_ratio"] <= 1.0

    def test_fig7_sources_sum_to_total(self, cache):
        table = run_experiment("fig7", cache)
        for row in table.rows[:-1]:
            parts = (
                row["when_d0"] + row["when_hist"] + row["when_lock"]
                + row["w_recovery"]
            )
            assert parts == pytest.approx(row["total"], abs=1e-9)
            assert row["total"] <= row["ideal"] + 1e-9

    def test_fig8_directory_is_unity(self, cache):
        table = run_experiment("fig8", cache)
        for row in table.rows:
            assert row["directory"] == 1.0
            assert row["broadcast"] <= 1.05

    def test_table5_predicted_at_least_actual(self, cache):
        table = run_experiment("table5", cache)
        for row in table.rows:
            if row["avg_predicted"] > 0:
                assert row["ratio"] > 0

    def test_fig11_broadcast_most_expensive(self, cache):
        table = run_experiment("fig11", cache)
        avg = table.rows[-1]
        assert avg["broadcast"] > avg["sp_predictor"] > avg["directory"] * 0.99

    def test_fig12_directory_anchor(self, cache):
        table = run_experiment("fig12", cache)
        anchors = [r for r in table.rows if r["predictor"] == "Directory"]
        for row in anchors:
            assert row["added_bw_pct"] == 0.0
            assert row["indirection_pct"] == 100.0

    def test_fig13_sp_insensitive_to_cap(self, cache):
        table = run_experiment("fig13", cache)
        sp_rows = [r for r in table.rows if r["predictor"] == "SP"]
        assert len(sp_rows) == 2
        a, b = sp_rows
        assert a["indirection_pct"] == pytest.approx(
            b["indirection_pct"], abs=2.0
        )

    def test_cli_main(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["fig1", "--scale", "0.05", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])
