"""Unit tests for the SynchroTrace-style ingestion frontend."""

import gzip

import pytest

from repro.sync.points import SyncKind
from repro.traces.compile import compile_workload, ensure_compiled
from repro.traces.ingest import (
    EXPORT_SUBTYPE,
    INGEST_KIND,
    PSEUDO_PC_COMM,
    PSEUDO_PC_READ,
    PSEUDO_PC_WRITE,
    export_synchrotrace,
    ingest_directory,
    ingest_file,
    ingest_threads,
    load_external,
    parse_thread,
    roundtrip_workload,
    synchrotrace_lines,
    trace_content_digest,
)
from repro.traces.store import load_compiled, save_compiled
from repro.workloads.base import OP_READ, OP_SYNC, OP_THINK, OP_WRITE
from repro.workloads.generator import build_workload
from repro.workloads.patterns import PatternKind
from repro.workloads.trace import TraceFormatError, TraceWorkload
from tests.conftest import make_spec


def ingest_one(lines, **kwargs):
    """A single-thread workload from raw trace lines."""
    return ingest_threads([("t0", 0, lines)], **kwargs)


class TestGrammar:
    def test_compute_event_think_plus_accesses(self):
        parse = parse_thread(
            ["1,0,10,5,1,1 * 0x100 0x107 $ 0x200 0x207"], tid=0
        )
        assert parse.events == [
            (OP_THINK, 15),
            (OP_READ, 0x100, PSEUDO_PC_READ),
            (OP_WRITE, 0x200, PSEUDO_PC_WRITE),
        ]

    def test_zero_op_compute_is_explicit_think(self):
        parse = parse_thread(["1,0,0,0,0,0"], tid=0)
        assert parse.events == [(OP_THINK, 0)]

    def test_zero_op_compute_with_access_has_no_think(self):
        parse = parse_thread(["1,0,0,0,1,0 * 0x100 0x107"], tid=0)
        assert parse.events == [(OP_READ, 0x100, PSEUDO_PC_READ)]

    def test_range_splits_per_cache_line(self):
        parse = parse_thread(["1,0,0,0,1,0 * 0x3c 0x85"], tid=0)
        # 0x3c..0x85 spans lines 0, 1, and 2: the start plus each
        # crossed 64-byte boundary becomes one access.
        addrs = [ev[1] for ev in parse.events]
        assert addrs == [0x3C, 0x40, 0x80]

    def test_comm_event_reads_with_comm_pc(self):
        parse = parse_thread(["3,0 # 1 17 0x500 0x507"], tid=0)
        assert parse.events == [(OP_READ, 0x500, PSEUDO_PC_COMM)]
        assert parse.stats["comm_edges"] == 1
        assert parse.stats["comm_reads"] == 1

    def test_decimal_addresses_accepted(self):
        parse = parse_thread(["1,0,0,0,1,0 * 256 263"], tid=0)
        assert parse.events == [(OP_READ, 256, PSEUDO_PC_READ)]

    def test_annotation_restores_pc(self):
        parse = parse_thread(["1,0,0,0,1,0 * 0x100 0x107 ! beef"], tid=0)
        assert parse.events == [(OP_READ, 0x100, 0xBEEF)]

    def test_blank_lines_ignored(self):
        parse = parse_thread(["", "1,0,3,0,0,0", "   "], tid=0)
        assert parse.events == [(OP_THINK, 3)]


class TestSyncMapping:
    @pytest.mark.parametrize("subtype,kind", sorted(INGEST_KIND.items()))
    def test_every_subtype_lowers(self, subtype, kind):
        if subtype in (1, 9):  # acquire kinds need a matching release
            lines = [f"1,0,pth_ty:{subtype}^0x40", "2,0,pth_ty:2^0x40"]
            probe = 0
        elif subtype in (2, 10):  # release kinds need a prior acquire
            lines = ["1,0,pth_ty:1^0x40", f"2,0,pth_ty:{subtype}^0x40"]
            probe = 1
        else:
            lines = [f"1,0,pth_ty:{subtype}^0x40"]
            probe = 0
        parse = parse_thread(lines, tid=0)
        assert parse.events[probe][1] is kind

    def test_lock_keys_by_object_address(self):
        parse = parse_thread(
            ["1,0,pth_ty:1^0x40", "2,0,pth_ty:2^0x40"], tid=0
        )
        assert parse.events[0] == (OP_SYNC, SyncKind.LOCK, 0x40, 0x40)
        assert parse.events[1] == (OP_SYNC, SyncKind.UNLOCK, 0x40, 0x40)

    def test_barrier_uses_object_as_static_pc(self):
        parse = parse_thread(["1,0,pth_ty:5^0x3000"], tid=0)
        assert parse.events[0] == (OP_SYNC, SyncKind.BARRIER, 0x3000, None)

    def test_export_mapping_is_injective_under_ingest(self):
        for kind, subtype in EXPORT_SUBTYPE.items():
            assert INGEST_KIND[subtype] is kind

    def test_annotation_restores_lock_addr_on_non_lock_kind(self):
        parse = parse_thread(["1,0,pth_ty:7^0x99 ! 99,42"], tid=0)
        assert parse.events[0] == (OP_SYNC, SyncKind.WAKEUP, 0x99, 0x42)


class TestValidation:
    def assert_one_line_numbered(self, excinfo):
        message = str(excinfo.value)
        assert "\n" not in message
        assert ":2:" in message or ":1:" in message

    def test_non_monotonic_eid(self):
        with pytest.raises(TraceFormatError, match="non-monotonic") as ei:
            parse_thread(["2,0,1,0,0,0", "2,0,1,0,0,0"], tid=0)
        self.assert_one_line_numbered(ei)

    def test_wrong_thread_id(self):
        with pytest.raises(TraceFormatError, match="thread-7 trace"):
            parse_thread(["1,0,1,0,0,0"], tid=7)

    def test_unknown_event_kind(self):
        with pytest.raises(TraceFormatError, match="unknown event kind"):
            parse_thread(["1,0,zorp"], tid=0)

    def test_unknown_pthread_subtype(self):
        with pytest.raises(TraceFormatError,
                           match="unknown pthread event type 42"):
            parse_thread(["1,0,pth_ty:42^0x40"], tid=0)

    def test_truncated_chunk(self):
        with pytest.raises(TraceFormatError, match=r"truncated '\*' chunk"):
            parse_thread(["1,0,0,0,1,0 * 0x100"], tid=0)

    def test_backwards_range(self):
        with pytest.raises(TraceFormatError, match="backwards"):
            parse_thread(["1,0,0,0,1,0 * 0x107 0x100"], tid=0)

    def test_unlock_not_held(self):
        with pytest.raises(TraceFormatError, match="not held"):
            parse_thread(["1,0,pth_ty:2^0x40"], tid=0)

    def test_badly_nested_unlock(self):
        with pytest.raises(TraceFormatError, match="badly nested"):
            parse_thread(
                ["1,0,pth_ty:1^0x40", "2,0,pth_ty:1^0x80",
                 "3,0,pth_ty:2^0x40"],
                tid=0,
            )

    def test_lock_held_at_end(self):
        with pytest.raises(TraceFormatError, match="still held"):
            parse_thread(["1,0,pth_ty:1^0x40"], tid=0)

    def test_barrier_with_lock_held(self):
        with pytest.raises(TraceFormatError, match="barrier arrival"):
            parse_thread(
                ["1,0,pth_ty:1^0x40", "2,0,pth_ty:5^0x3000"], tid=0
            )

    def test_cross_thread_barrier_order(self):
        sources = [
            ("a", 0, ["1,0,pth_ty:5^0x10", "2,0,pth_ty:5^0x20"]),
            ("b", 1, ["1,1,pth_ty:5^0x20", "2,1,pth_ty:5^0x10"]),
        ]
        with pytest.raises(TraceFormatError,
                           match="out-of-order barrier") as ei:
            ingest_threads(sources)
        message = str(ei.value)
        assert "\n" not in message
        assert message.startswith("b:1:")

    def test_duplicate_thread_id(self):
        with pytest.raises(TraceFormatError, match="duplicate thread id"):
            ingest_threads([("a", 0, []), ("b", 0, [])])

    def test_empty_sources(self):
        with pytest.raises(TraceFormatError, match="no thread traces"):
            ingest_threads([])


class TestAssembly:
    def test_cores_padded_to_power_of_two(self):
        sources = [
            (f"t{i}", i, [f"1,{i},1,0,0,0"]) for i in range(3)
        ]
        workload = ingest_threads(sources)
        assert workload.num_cores == 4
        assert workload.stream(3) == []

    def test_sorted_thread_map_packs_gaps(self):
        sources = [
            ("a", 4, ["1,4,1,0,0,0"]),
            ("b", 9, ["1,9,2,0,0,0"]),
        ]
        workload = ingest_threads(sources, thread_map="sorted")
        assert workload.num_cores == 2
        assert workload.stream(0) == [(OP_THINK, 1)]
        assert workload.stream(1) == [(OP_THINK, 2)]

    def test_identity_thread_map_preserves_tids(self):
        sources = [("a", 2, ["1,2,1,0,0,0"])]
        workload = ingest_threads(sources, thread_map="identity")
        assert workload.num_cores == 4
        assert workload.stream(2) == [(OP_THINK, 1)]

    def test_too_few_cores_rejected(self):
        sources = [(f"t{i}", i, []) for i in range(4)]
        with pytest.raises(TraceFormatError, match="cores required"):
            ingest_threads(sources, num_cores=2)

    def test_unknown_thread_map_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown thread map"):
            ingest_threads([("a", 0, [])], thread_map="hash")

    def test_rebase_shifts_memory_not_locks(self):
        lines = [
            "1,0,0,0,1,0 * 0x10020 0x10027",
            "2,0,pth_ty:1^0x40",
            "3,0,pth_ty:2^0x40",
        ]
        workload = ingest_one(lines, rebase=True)
        assert workload.stream(0)[0] == (OP_READ, 0x20, PSEUDO_PC_READ)
        assert workload.stream(0)[1][3] == 0x40  # lock object untouched
        assert workload.provenance["rebase"] == 0x10000

    def test_provenance_event_totals(self):
        lines = [
            "1,0,7,0,1,1 * 0x100 0x107 $ 0x140 0x147",
            "2,0,pth_ty:5^0x3000",
            "3,0 # 1 1 0x200 0x207",
        ]
        workload = ingest_one(lines, name="probe")
        assert isinstance(workload, TraceWorkload)
        events = workload.provenance["events"]
        assert events["reads"] == 1
        assert events["writes"] == 1
        assert events["comm_reads"] == 1
        assert events["thinks"] == 1
        assert events["think_cycles"] == 7
        assert events["syncs"] == {"barrier": 1}


@pytest.fixture
def source():
    return build_workload(
        make_spec(PatternKind.STRIDE, locks=1, iterations=2)
    )


class TestExporter:
    def test_roundtrip_is_bit_identical(self, source):
        reingested = roundtrip_workload(source)
        assert reingested.name == source.name
        assert reingested.num_cores == source.num_cores
        for core in range(source.num_cores):
            assert reingested.stream(core) == source.stream(core)

    def test_every_line_reingests_alone(self, source):
        # Each exported line must be self-describing (annotation
        # included), so any prefix of a thread file stays parseable.
        lines = list(synchrotrace_lines(source, 0))
        parse = parse_thread(lines[:5], tid=0)
        assert parse.events == list(source.stream(0))[:5]

    def test_export_to_directory_and_back(self, source, tmp_path):
        out = tmp_path / "st"
        paths = export_synchrotrace(source, out)
        assert len(paths) == source.num_cores
        back = ingest_directory(
            out, name=source.name, num_cores=source.num_cores,
            thread_map="identity",
        )
        for core in range(source.num_cores):
            assert back.stream(core) == source.stream(core)

    def test_gzip_export_and_ingest(self, source, tmp_path):
        out = tmp_path / "st-gz"
        paths = export_synchrotrace(source, out, compress=True)
        assert all(p.suffix == ".gz" for p in paths)
        with gzip.open(paths[0], "rt") as fh:
            assert fh.readline().strip()
        back = ingest_directory(
            out, num_cores=source.num_cores, thread_map="identity"
        )
        assert back.stream(0) == source.stream(0)


class TestLoadExternal:
    def test_directory_autodetect(self, source, tmp_path):
        out = tmp_path / "st"
        export_synchrotrace(source, out)
        workload = load_external(
            out, num_cores=source.num_cores, thread_map="identity"
        )
        assert workload.provenance["format"] == "synchrotrace"

    def test_v2_autodetect_keeps_compiled(self, source, tmp_path):
        path = tmp_path / "t.rtrace"
        save_compiled(compile_workload(source), path)
        workload = load_external(path)
        assert workload._compiled is not None
        assert workload.stream(0) == source.stream(0)

    def test_v1_autodetect(self, source, tmp_path):
        from repro.workloads.trace import dump_trace

        path = tmp_path / "t.trace"
        dump_trace(source, path)
        workload = load_external(path)
        assert workload.provenance["format"] == "repro-trace v1 (text)"
        assert workload.stream(0) == source.stream(0)

    def test_single_file_autodetect(self, source, tmp_path):
        out = tmp_path / "st"
        export_synchrotrace(source, out)
        workload = load_external(out / "sigil.events.out-3")
        assert workload.num_cores == 1  # sorted map packs one thread
        assert workload.provenance["threads"] == 1
        assert workload.provenance["thread_ids"] == [3]

    def test_ingest_file_reads_tid_from_name(self, source, tmp_path):
        out = tmp_path / "st"
        export_synchrotrace(source, out)
        workload = ingest_file(out / "sigil.events.out-2")
        assert workload.provenance["thread_ids"] == [2]


class TestContentDigest:
    def test_digest_changes_with_bytes(self, source, tmp_path):
        out = tmp_path / "st"
        export_synchrotrace(source, out)
        before = trace_content_digest(out)
        path = out / "sigil.events.out-0"
        path.write_text(path.read_text() + "\n")
        assert trace_content_digest(out) != before

    def test_digest_stable(self, source, tmp_path):
        out = tmp_path / "st"
        export_synchrotrace(source, out)
        assert trace_content_digest(out) == trace_content_digest(out)


class TestProvenancePlumbing:
    def test_compile_carries_meta(self, tmp_path):
        workload = ingest_one(["1,0,5,0,0,0"], name="probe")
        compiled = ensure_compiled(workload)
        assert compiled.meta == workload.provenance

    def test_store_roundtrips_meta(self, tmp_path):
        workload = ingest_one(["1,0,5,0,0,0"], name="probe")
        path = tmp_path / "t.rtrace"
        save_compiled(compile_workload(workload), path)
        back = load_compiled(path)
        assert back.meta == workload.provenance
        rebuilt = back.to_workload()
        assert isinstance(rebuilt, TraceWorkload)
        assert rebuilt.provenance == workload.provenance

    def test_synthetic_workload_has_no_meta(self, tmp_path):
        synthetic = build_workload(make_spec(PatternKind.STABLE))
        compiled = compile_workload(synthetic)
        assert compiled.meta is None
        path = tmp_path / "t.rtrace"
        save_compiled(compiled, path)
        assert load_compiled(path).meta is None
