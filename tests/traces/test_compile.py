"""Tests for the trace compiler: columns, segments, lazy duality."""

import pytest

from repro.sync.points import SyncKind
from repro.traces.compile import (
    BLOCK_SHIFT,
    SEG_PRIVATE,
    SEG_THINK,
    CompiledTrace,
    attach_compiled,
    compile_workload,
    ensure_compiled,
)
from repro.workloads.base import OP_READ, OP_SYNC, OP_THINK, OP_WRITE, Workload
from repro.workloads.generator import build_workload
from repro.workloads.patterns import PatternKind
from tests.conftest import make_spec


def addr(block: int) -> int:
    return block << BLOCK_SHIFT


def segments_of(compiled: CompiledTrace, core: int, kind: int) -> list:
    return [s for s in compiled.segments[core] if s[0] == kind]


class TestThinkSegments:
    def test_prefix_sums_are_cumulative_cycles(self):
        streams = [
            [
                (OP_THINK, 5),
                (OP_THINK, 7),
                (OP_THINK, 11),
                (OP_READ, addr(1), 0x400),
            ],
            [],
        ]
        compiled = compile_workload(
            Workload(name="t", num_cores=2, events=streams)
        )
        think = segments_of(compiled, 0, SEG_THINK)
        assert len(think) == 1
        kind, start, end, prefix = think[0]
        assert (start, end) == (0, 3)
        assert list(prefix) == [5, 12, 23]

    def test_sync_splits_think_runs(self):
        streams = [
            [
                (OP_THINK, 5),
                (OP_SYNC, SyncKind.BARRIER, 0x500, None),
                (OP_THINK, 7),
            ],
            [(OP_SYNC, SyncKind.BARRIER, 0x500, None)],
        ]
        compiled = compile_workload(
            Workload(name="t", num_cores=2, events=streams)
        )
        think = segments_of(compiled, 0, SEG_THINK)
        assert [(s[1], s[2]) for s in think] == [(0, 1), (2, 3)]


class TestPrivateSegments:
    def test_first_touches_of_sole_toucher_blocks(self):
        streams = [
            [
                (OP_READ, addr(1), 0x400),
                (OP_WRITE, addr(2), 0x404),
                (OP_READ, addr(1), 0x408),  # repeat: not a first touch
            ],
            [(OP_READ, addr(9), 0x400)],
        ]
        compiled = compile_workload(
            Workload(name="t", num_cores=2, events=streams)
        )
        private = segments_of(compiled, 0, SEG_PRIVATE)
        assert [(s[1], s[2]) for s in private] == [(0, 2)]
        assert [(s[1], s[2]) for s in segments_of(compiled, 1, SEG_PRIVATE)] \
            == [(0, 1)]

    def test_cross_core_blocks_are_never_private(self):
        # Core 1 touches block 1 later in the trace, so core 0's touch
        # (which comes first in stream order) must not be private either:
        # privacy is a whole-trace property, not a prefix property.
        streams = [
            [(OP_READ, addr(1), 0x400), (OP_READ, addr(2), 0x404)],
            [(OP_WRITE, addr(1), 0x400)],
        ]
        compiled = compile_workload(
            Workload(name="t", num_cores=2, events=streams)
        )
        private = segments_of(compiled, 0, SEG_PRIVATE)
        # Only the sole-touched block 2 may appear, as its own segment.
        assert [(s[1], s[2]) for s in private] == [(1, 2)]
        assert segments_of(compiled, 1, SEG_PRIVATE) == []

    def test_same_block_different_offsets_share_privacy(self):
        streams = [
            [(OP_READ, addr(1), 0x400)],
            [(OP_READ, addr(1) + 8, 0x404)],  # same 64-byte block
        ]
        compiled = compile_workload(
            Workload(name="t", num_cores=2, events=streams)
        )
        assert segments_of(compiled, 0, SEG_PRIVATE) == []
        assert segments_of(compiled, 1, SEG_PRIVATE) == []


class TestLazyColumns:
    def test_in_process_compile_defers_columns(self):
        workload = build_workload(make_spec(iterations=2))
        compiled = compile_workload(workload)
        assert compiled.ops is None
        total = compiled.total_events()
        compiled.ensure_columns()
        assert compiled.ops is not None
        assert compiled.total_events() == total
        assert sum(len(col) for col in compiled.ops) == total

    def test_columns_rehydrate_to_original_tuples(self):
        workload = build_workload(
            make_spec(PatternKind.STRIDE, locks=1, iterations=2)
        )
        compiled = compile_workload(workload)
        compiled.ensure_columns()
        rebuilt = CompiledTrace(
            name=compiled.name,
            num_cores=compiled.num_cores,
            ops=compiled.ops,
            arg1=compiled.arg1,
            arg2=compiled.arg2,
            arg3=compiled.arg3,
            segments=compiled.segments,
        )
        for core in range(workload.num_cores):
            assert rebuilt.events(core) == workload.stream(core)

    def test_events_memoized(self):
        workload = build_workload(make_spec(iterations=2))
        compiled = compile_workload(workload)
        assert compiled.events(0) is compiled.events(0)


class TestAttach:
    def test_ensure_compiled_caches_on_workload(self):
        workload = build_workload(make_spec(iterations=2))
        compiled = ensure_compiled(workload)
        assert ensure_compiled(workload) is compiled

    def test_attach_rejects_shape_mismatch(self):
        workload = build_workload(make_spec(iterations=2))
        other = compile_workload(build_workload(make_spec(iterations=3)))
        with pytest.raises(ValueError, match="shape"):
            attach_compiled(workload, other)

    def test_attach_accepts_matching_trace(self):
        workload = build_workload(make_spec(iterations=2))
        compiled = compile_workload(workload)
        attach_compiled(workload, compiled)
        assert workload._compiled is compiled
