"""Golden SynchroTrace corpus: pinned valid traces and malformed
variants under ``tests/data/synchrotrace/``.

Valid cases must ingest to their recorded event totals and interpreted
directory/SP summaries; malformed cases must raise a one-line,
line-numbered :class:`~repro.workloads.trace.TraceFormatError`
mentioning the pinned phrase.  The same harness backs
``repro check ingest --corpus``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check.ingest import (
    EXPECTED_ERROR,
    EXPECTED_JSON,
    check_malformed_case,
    check_valid_case,
    corpus_cases,
)
from repro.workloads.trace import TraceFormatError

CORPUS = Path(__file__).resolve().parents[2] / "tests/data/synchrotrace"

VALID = corpus_cases(CORPUS, "valid")
MALFORMED = corpus_cases(CORPUS, "malformed")


def test_corpus_is_populated():
    assert len(VALID) >= 3
    assert len(MALFORMED) >= 4


@pytest.mark.parametrize("case", VALID, ids=lambda c: c.name)
def test_valid_case_matches_pin(case):
    issues = check_valid_case(case)
    assert not issues, "; ".join(issue.describe() for issue in issues)


@pytest.mark.parametrize("case", MALFORMED, ids=lambda c: c.name)
def test_malformed_case_raises_pinned_error(case):
    issues = check_malformed_case(case)
    assert not issues, "; ".join(issue.describe() for issue in issues)


def test_unpinned_case_is_rejected(tmp_path):
    corpus = tmp_path / "corpus"
    stray = corpus / "valid" / "no-pin"
    stray.mkdir(parents=True)
    (stray / "sigil.events.out-0").write_text("1,0,1,0,0,0\n")
    with pytest.raises(TraceFormatError, match="without a"):
        corpus_cases(corpus, "valid")


def test_every_case_has_exactly_one_marker():
    for case in VALID:
        assert not (case / EXPECTED_ERROR).exists()
    for case in MALFORMED:
        assert not (case / EXPECTED_JSON).exists()
