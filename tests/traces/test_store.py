"""Tests for the v2 binary format and the content-addressed store."""

import struct

import pytest

from repro.traces.compile import compile_workload
from repro.traces.store import (
    TraceStore,
    TraceStoreError,
    load_benchmark_compiled,
    load_compiled,
    save_compiled,
    workload_key,
)
from repro.workloads.generator import build_workload
from repro.workloads.patterns import PatternKind
from tests.conftest import make_spec


@pytest.fixture
def source():
    return build_workload(
        make_spec(PatternKind.STRIDE, locks=1, iterations=2)
    )


@pytest.fixture
def compiled(source):
    return compile_workload(source)


def save(compiled, tmp_path):
    path = tmp_path / "t.rtrace"
    save_compiled(compiled, path)
    return path


class TestRoundTrip:
    def test_events_and_segments_survive(self, compiled, tmp_path):
        loaded = load_compiled(save(compiled, tmp_path))
        assert loaded.name == compiled.name
        assert loaded.num_cores == compiled.num_cores
        for core in range(compiled.num_cores):
            assert loaded.events(core) == compiled.events(core)
            assert [s[:3] for s in loaded.segments[core]] == [
                s[:3] for s in compiled.segments[core]
            ]
            # THINK prefix payloads are derived data, rebuilt at load.
            assert [
                list(s[3]) for s in loaded.segments[core] if s[3] is not None
            ] == [
                list(s[3])
                for s in compiled.segments[core]
                if s[3] is not None
            ]

    def test_to_workload_matches_source(self, source, compiled, tmp_path):
        loaded = load_compiled(save(compiled, tmp_path))
        rebuilt = loaded.to_workload()
        assert rebuilt.num_cores == source.num_cores
        for core in range(source.num_cores):
            assert rebuilt.stream(core) == source.stream(core)

    def test_save_is_deterministic(self, compiled, tmp_path):
        save_compiled(compiled, tmp_path / "a.rtrace")
        save_compiled(compiled, tmp_path / "b.rtrace")
        assert (tmp_path / "a.rtrace").read_bytes() == \
            (tmp_path / "b.rtrace").read_bytes()


class TestMalformedFiles:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.rtrace"
        path.write_bytes(b"")
        with pytest.raises(TraceStoreError, match="empty"):
            load_compiled(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t.rtrace"
        path.write_bytes(b"NOTATRCE" + b"\0" * 64)
        with pytest.raises(TraceStoreError, match="magic"):
            load_compiled(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.rtrace"
        path.write_bytes(b"RTRACEv2" + struct.pack("<I", 10_000) + b"{}")
        with pytest.raises(TraceStoreError, match="truncated header"):
            load_compiled(path)

    def test_truncated_columns(self, compiled, tmp_path):
        path = save(compiled, tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 16])
        with pytest.raises(TraceStoreError, match="truncated"):
            load_compiled(path)

    def test_trailing_garbage(self, compiled, tmp_path):
        path = save(compiled, tmp_path)
        path.write_bytes(path.read_bytes() + b"\0" * 8)
        with pytest.raises(TraceStoreError, match="trailing garbage"):
            load_compiled(path)

    def test_corrupt_header_json(self, tmp_path):
        blob = b"not json at all"
        path = tmp_path / "t.rtrace"
        path.write_bytes(b"RTRACEv2" + struct.pack("<I", len(blob)) + blob)
        with pytest.raises(TraceStoreError, match="corrupt header"):
            load_compiled(path)

    def test_wrong_version(self, compiled, tmp_path):
        path = save(compiled, tmp_path)
        blob = bytearray(path.read_bytes())
        (hlen,) = struct.unpack_from("<I", blob, 8)
        header = blob[12: 12 + hlen].replace(
            b'"version":2', b'"version":9'
        )
        assert len(header) == hlen  # same-length patch keeps sizes valid
        blob[12: 12 + hlen] = header
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceStoreError, match="version"):
            load_compiled(path)


class TestStore:
    def test_miss_then_hit(self, compiled, tmp_path):
        store = TraceStore(tmp_path)
        key = "k" * 64
        assert store.load(key) is None
        store.store(key, compiled)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.events(0) == compiled.events(0)
        assert (store.hits, store.misses) == (1, 1)
        assert store.size() == 1

    def test_corrupt_entry_dropped(self, compiled, tmp_path):
        store = TraceStore(tmp_path)
        key = "k" * 64
        store.store(key, compiled)
        store.path(key).write_bytes(b"garbage")
        assert store.load(key) is None
        assert not store.path(key).exists()

    def test_clear(self, compiled, tmp_path):
        store = TraceStore(tmp_path)
        store.store("a" * 64, compiled)
        store.store("b" * 64, compiled)
        assert store.clear() == 2
        assert store.size() == 0

    def test_from_env_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert TraceStore.from_env() is None

    def test_default_dir_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        store = TraceStore.from_env()
        assert store is not None
        assert store.root == tmp_path / "traces"


class TestWorkloadKey:
    def test_distinct_inputs_distinct_keys(self):
        base = workload_key("bodytrack", 0.5, None)
        assert workload_key("x264", 0.5, None) != base
        assert workload_key("bodytrack", 0.25, None) != base
        assert workload_key("bodytrack", 0.5, 7) != base
        assert workload_key("bodytrack", 0.5, None) == base


class TestLoadBenchmarkCompiled:
    def test_store_hit_reproduces_generated_workload(self, tmp_path):
        from repro.workloads.suite import load_benchmark

        store = TraceStore(tmp_path)
        cold = load_benchmark_compiled("lu", scale=0.05, store=store)
        assert store.size() == 1
        warm = load_benchmark_compiled("lu", scale=0.05, store=store)
        assert store.hits == 1
        reference = load_benchmark("lu", scale=0.05)
        for workload in (cold, warm):
            assert workload.num_cores == reference.num_cores
            for core in range(reference.num_cores):
                assert workload.stream(core) == reference.stream(core)
            assert workload._compiled is not None

    def test_disabled_store_compiles_in_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        workload = load_benchmark_compiled("lu", scale=0.05)
        assert workload._compiled is not None
