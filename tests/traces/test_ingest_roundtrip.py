"""Round-trip certification: every suite workload survives SynchroTrace
export -> re-ingest with bit-identical simulation counters.

Each of the 17 workloads is exported to SynchroTrace text in memory,
re-ingested, and certified two ways:

* the event streams must match tuple-for-tuple (the sharpest check —
  any parser/exporter disagreement shows up as a precise event diff);
* the re-ingested workload's complete ``SimulationResult.to_dict()``
  payload must equal the original's on all three engine paths
  (interpreted / compiled / vectorized).  The original is simulated
  once on the interpreted path; ``test_engine_equivalence.py`` already
  certifies the original's three paths against each other, so one
  reference payload pins all three comparisons.
"""

from __future__ import annotations

import pytest

from repro.check.ingest import ENGINE_PATHS, _first_stream_diff
from repro.check.lockstep import machine_for_cores
from repro.sim.engine import SimulationEngine
from repro.traces.ingest import roundtrip_workload
from repro.workloads.suite import benchmark_names, load_benchmark

SCALE = 0.02
SEED = 7


@pytest.fixture(scope="module")
def roundtrips():
    """name -> (original, re-ingested), built once for the module."""
    cache = {}

    def get(name):
        if name not in cache:
            workload = load_benchmark(name, scale=SCALE, seed=SEED)
            cache[name] = (workload, roundtrip_workload(workload))
        return cache[name]

    return get


@pytest.mark.parametrize("name", benchmark_names())
def test_streams_roundtrip_bit_identical(roundtrips, name):
    workload, reingested = roundtrips(name)
    assert _first_stream_diff(workload, reingested) is None
    assert reingested.name == workload.name
    assert reingested.num_cores == workload.num_cores


@pytest.mark.parametrize("name", benchmark_names())
def test_counters_roundtrip_on_every_engine_path(roundtrips, name):
    workload, reingested = roundtrips(name)
    machine = machine_for_cores(workload.num_cores)

    def run(subject, **path_kw):
        return SimulationEngine(
            subject, machine=machine, protocol="directory",
            predictor="SP", **path_kw,
        ).run().to_dict()

    reference = run(
        workload, use_compiled=False, use_vector=False
    )
    for path_name, path_kw in ENGINE_PATHS:
        payload = run(reingested, **path_kw)
        diverging = [
            key for key in reference
            if reference.get(key) != payload.get(key)
        ]
        assert payload == reference, (
            f"{name}: {path_name} counters diverge after re-ingest "
            f"(fields: {', '.join(diverging[:6])})"
        )
