"""Compiled-vs-interpreted engine equivalence (quick CI subset).

The acceptance property of the compiled fast path is bit-identity with
the event-by-event interpreter on every counter.  The full 17-workload
grid runs in ``tools/check.sh`` (``repro check diff``); this module
pins the property in the test suite on a small but diverse subset:
suite workloads (think runs, private spans, locks, barriers), a v2
store round trip, and fuzz traces whose segment structure the suite
generators never produce.
"""

import pytest

from repro.check.differential import check_engine_paths
from repro.check.fuzz import CASE_ENGINE_CELLS, fuzz_machine, run_case
from repro.sim.engine import SimulationEngine
from repro.sim.machine import MachineConfig
from repro.traces.store import TraceStore, load_benchmark_compiled
from repro.workloads.fuzz import FuzzConfig, generate_fuzz_case
from repro.workloads.suite import load_benchmark


@pytest.mark.parametrize("name", ["bodytrack", "streamcluster"])
def test_suite_workload_bit_identical(name):
    workload = load_benchmark(name, scale=0.05)
    divergences = check_engine_paths(workload, machine=MachineConfig())
    assert divergences == []


def test_store_loaded_trace_bit_identical(tmp_path):
    """The fast path must agree even when the trace came from disk."""
    store = TraceStore(tmp_path)
    load_benchmark_compiled("lu", scale=0.05, store=store)  # populate
    workload = load_benchmark_compiled("lu", scale=0.05, store=store)
    assert store.hits == 1
    divergences = check_engine_paths(workload, machine=MachineConfig())
    assert divergences == []


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_fuzz_traces_bit_identical(seed):
    case = generate_fuzz_case(seed, FuzzConfig(num_cores=4))
    failure = run_case(
        case.workload,
        case.migrations,
        protocols=("directory",),
        predictors=("none",),
        engine_cells=CASE_ENGINE_CELLS,
    )
    assert failure is None


def test_nondefault_line_size_still_identical():
    """PRIVATE segments are keyed to 64-byte blocks; under any other
    line size the engine must ignore them (think-only fast path) and
    still match the interpreter exactly."""
    from dataclasses import replace

    from repro.cache.cache import CacheConfig

    machine = MachineConfig()
    machine = replace(
        machine,
        l1=CacheConfig(size=machine.l1.size, assoc=machine.l1.assoc,
                       line_size=32),
        l2=CacheConfig(size=machine.l2.size, assoc=machine.l2.assoc,
                       line_size=32),
    )
    workload = load_benchmark("lu", scale=0.05)
    divergences = check_engine_paths(
        workload, cells=(("directory", "SP"),), machine=machine
    )
    assert divergences == []


def test_use_compiled_flag_and_env(monkeypatch):
    workload = load_benchmark("lu", scale=0.05)
    engine = SimulationEngine(workload)
    monkeypatch.delenv("REPRO_COMPILED", raising=False)
    assert engine._compiled_enabled()
    monkeypatch.setenv("REPRO_COMPILED", "0")
    assert not engine._compiled_enabled()
    # The explicit constructor argument beats the environment.
    assert SimulationEngine(workload, use_compiled=True)._compiled_enabled()
    monkeypatch.delenv("REPRO_COMPILED", raising=False)
    assert not SimulationEngine(
        workload, use_compiled=False
    )._compiled_enabled()
