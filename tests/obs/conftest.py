"""Shared fixtures: one traced simulation reused across the obs suite."""

import pytest

from repro.obs import EventTracer
from repro.sim.engine import SimulationEngine
from repro.workloads import load_benchmark


@pytest.fixture(scope="session")
def traced_run():
    """(result, tracer) for one SP-predicted lu run with tracing on."""
    workload = load_benchmark("lu", scale=0.05)
    tracer = EventTracer()
    engine = SimulationEngine(
        workload, predictor="SP", collect_epochs=True, tracer=tracer
    )
    result = engine.run()
    return result, tracer


@pytest.fixture(scope="session")
def traced_doc(traced_run):
    """The serialized event stream of the shared traced run."""
    _, tracer = traced_run
    return tracer.to_doc()
