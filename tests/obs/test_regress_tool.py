"""tools/regress.py: the standalone sentinel's exit-code contract."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parents[2] / "tools" / "regress.py"


@pytest.fixture(scope="module")
def regress_tool():
    spec = importlib.util.spec_from_file_location("regress_tool", TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["regress_tool"] = module
    spec.loader.exec_module(module)
    return module


def write_payload(path, misses):
    path.write_text(json.dumps({
        "schema": 1,
        "cells": [{
            "workload": "lu", "protocol": "directory", "predictor": "SP",
            "counters": {"misses": misses},
            "gauges": {"comm_ratio": 0.4},
        }],
        "aggregate": {"counters": {"misses": misses}},
    }))
    return path


class TestCompareMode:
    def test_identical_payloads_exit_zero(self, regress_tool, tmp_path,
                                          capsys):
        a = write_payload(tmp_path / "a.json", 100)
        b = write_payload(tmp_path / "b.json", 100)
        assert regress_tool.main(["--compare", str(a), str(b)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_drifted_payloads_exit_one(self, regress_tool, tmp_path,
                                       capsys):
        a = write_payload(tmp_path / "a.json", 100)
        b = write_payload(tmp_path / "b.json", 101)
        assert regress_tool.main(["--compare", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "aggregate.counters.misses" in out
        assert "FAIL" in out

    def test_json_mode(self, regress_tool, tmp_path, capsys):
        a = write_payload(tmp_path / "a.json", 100)
        b = write_payload(tmp_path / "b.json", 101)
        assert regress_tool.main(
            ["--compare", str(a), str(b), "--json"]
        ) == 1
        assert json.loads(capsys.readouterr().out)["passed"] is False

    def test_missing_file_one_line_error(self, regress_tool, tmp_path,
                                         capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        a = write_payload(tmp_path / "a.json", 100)
        assert regress_tool.main(
            ["--compare", str(a), str(tmp_path / "nope.json")]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestBaselineGate:
    def test_missing_baseline_exit_one(self, regress_tool, tmp_path,
                                       capsys):
        missing = tmp_path / "baselines.json"
        assert regress_tool.main(["--baseline", str(missing)]) == 1
        err = capsys.readouterr().err
        assert "--update" in err

    def test_stale_cache_version_exit_one(self, regress_tool, tmp_path,
                                          capsys):
        from repro.runner import CACHE_VERSION

        stale = tmp_path / "baselines.json"
        stale.write_text(json.dumps({
            "cache_version": CACHE_VERSION - 1,
            "metrics": {"schema": 1, "cells": [], "aggregate": {}},
        }))
        assert regress_tool.main(["--baseline", str(stale)]) == 1
        err = capsys.readouterr().err
        assert "cache_version" in err
        assert "regenerate" in err


class TestCommittedBaseline:
    def test_repo_baseline_matches_current_cache_version(self):
        from repro.runner import CACHE_VERSION

        baseline_path = TOOL.parent.parent / "benchmarks/baselines.json"
        assert baseline_path.exists(), (
            "benchmarks/baselines.json must be committed; regenerate "
            "with tools/regress.py --update"
        )
        baseline = json.loads(baseline_path.read_text())
        assert baseline["cache_version"] == CACHE_VERSION
        assert baseline["metrics"]["schema"] == 1
        assert len(baseline["metrics"]["cells"]) == len(
            baseline["probe"]["grid"]
        )
