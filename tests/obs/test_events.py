"""EventTracer: hooks, ring buffer, serialization, and validation."""

import pytest

from repro.obs import (
    DEFAULT_CAPACITY,
    EVENT_KINDS,
    SCHEMA_VERSION,
    EventTracer,
    load_events,
    save_events,
    validate_events,
)
from repro.sync.points import StaticSyncId, SyncKind

BARRIER = StaticSyncId(kind=SyncKind.BARRIER, pc=400)
LOCK = StaticSyncId(kind=SyncKind.LOCK, pc=500, lock_addr=0x1000)


class TestTracerHooks:
    def test_sync_opens_and_closes_epochs(self):
        tr = EventTracer()
        tr.on_sync(0, 100, BARRIER)
        tr.on_sync(0, 250, BARRIER)
        kinds = [e["t"] for e in tr.events]
        # lazy epoch 0 (pre-sync interval) closes at the first sync
        assert kinds == [
            "epoch_begin", "epoch_end", "sync", "epoch_begin",
            "epoch_end", "sync", "epoch_begin",
        ]
        begins = [e for e in tr.events if e["t"] == "epoch_begin"]
        assert [b["epoch"] for b in begins] == [0, 1, 2]
        assert begins[0]["key"] is None and begins[0]["kind"] == "start"
        assert begins[1]["key"] == ["pc", 400]

    def test_lock_sync_carries_lock_addr(self):
        tr = EventTracer()
        tr.on_sync(1, 10, LOCK)
        sync = next(e for e in tr.events if e["t"] == "sync")
        assert sync["lock"] == 0x1000
        begin = [e for e in tr.events if e["t"] == "epoch_begin"][-1]
        assert begin["key"] == ["lock", 0x1000]

    def test_miss_advances_cursor_and_counts(self):
        tr = EventTracer()
        tr.on_sync(0, 100, BARRIER)
        tr.on_miss(0, "read", {1}, {1}, True, "d0", 40, True)
        tr.on_miss(0, "write", None, set(), None, None, 15, False)
        preds = [e for e in tr.events if e["t"] == "pred"]
        assert len(preds) == 1  # unpredicted misses emit nothing
        assert preds[0]["ts"] == 140  # epoch begin 100 + latency 40
        tr.on_finish(0, 300)
        end = [e for e in tr.events if e["t"] == "epoch_end"][-1]
        assert end["misses"] == 2
        assert end["comm"] == 1
        assert end["preds"] == 1
        assert end["correct"] == 1

    def test_sub_hooks_use_last_seen_ts(self):
        tr = EventTracer()
        tr.on_sync(2, 77, BARRIER)
        tr.sp_recover(2, {0, 3})
        ev = tr.events[-1]
        assert ev["t"] == "sp_recover"
        assert ev["ts"] == 77
        assert ev["hot"] == [0, 3]

    def test_pred_repair_reports_missing_targets(self):
        tr = EventTracer()
        tr.pred_repair(0, "read", {1}, {1, 2})
        ev = tr.events[-1]
        assert ev["missing"] == [2]
        assert ev["predicted"] == [1]
        assert ev["minimal"] == [1, 2]


class TestRingBuffer:
    def test_wraps_and_counts_dropped(self):
        tr = EventTracer(capacity=8)
        tr.on_sync(0, 0, BARRIER)
        for i in range(20):
            tr.on_miss(0, "read", {1}, {1}, True, "d0", 10, True)
        assert len(tr.events) == 8
        assert tr.dropped == tr.emitted - 8 > 0
        doc = tr.to_doc()
        assert doc["dropped"] == tr.dropped
        assert len(doc["events"]) == 8

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_default_capacity(self):
        assert EventTracer().capacity == DEFAULT_CAPACITY


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        tr = EventTracer()
        tr.begin_run("lu", 4, "directory", "SP")
        tr.on_sync(0, 5, BARRIER)
        path = tmp_path / "ev.json"
        doc = save_events(tr, path)
        loaded = load_events(path)
        assert loaded == doc
        assert loaded["schema"] == SCHEMA_VERSION
        assert loaded["meta"]["workload"] == "lu"

    def test_load_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_events(tmp_path / "nope.json")

    def test_load_corrupt_json_names_the_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated")
        with pytest.raises(ValueError, match="bad.json"):
            load_events(path)

    def test_load_non_event_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{\"misses\": 3}")
        with pytest.raises(ValueError, match="not a repro event stream"):
            load_events(path)

    def test_load_future_schema_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text("{\"schema\": 99, \"events\": []}")
        with pytest.raises(ValueError, match="v99"):
            load_events(path)


class TestValidation:
    def _doc(self, events, dropped=0):
        return {
            "schema": SCHEMA_VERSION, "meta": {}, "capacity": 100,
            "emitted": len(events) + dropped, "dropped": dropped,
            "events": events,
        }

    def test_real_run_validates_clean(self, traced_doc):
        assert validate_events(traced_doc) == []

    def test_unclosed_epoch_flagged(self):
        doc = self._doc([
            {"t": "epoch_begin", "core": 0, "ts": 0, "epoch": 0},
        ])
        assert any("never ended" in e for e in validate_events(doc))

    def test_double_begin_flagged(self):
        doc = self._doc([
            {"t": "epoch_begin", "core": 0, "ts": 0, "epoch": 0},
            {"t": "epoch_begin", "core": 0, "ts": 5, "epoch": 1},
        ])
        assert any("still open" in e for e in validate_events(doc))

    def test_pred_outside_epoch_flagged(self):
        doc = self._doc([
            {"t": "pred", "core": 0, "ts": 5, "epoch": 0},
        ])
        assert any("outside any epoch" in e for e in validate_events(doc))

    def test_pred_referencing_dead_epoch_flagged(self):
        doc = self._doc([
            {"t": "epoch_begin", "core": 0, "ts": 0, "epoch": 0},
            {"t": "pred", "core": 0, "ts": 5, "epoch": 7},
            {"t": "epoch_end", "core": 0, "ts": 9, "epoch": 0},
        ])
        assert any("live epoch" in e for e in validate_events(doc))

    def test_backwards_timestamp_flagged(self):
        doc = self._doc([
            {"t": "epoch_begin", "core": 0, "ts": 50, "epoch": 0},
            {"t": "pred", "core": 0, "ts": 10, "epoch": 0},
            {"t": "epoch_end", "core": 0, "ts": 60, "epoch": 0},
        ])
        assert any("ts 10 < previous 50" in e for e in validate_events(doc))

    def test_unknown_kind_flagged(self):
        doc = self._doc([{"t": "mystery", "core": 0, "ts": 0}])
        assert any("unknown kind" in e for e in validate_events(doc))

    def test_truncated_stream_tolerates_orphan_prefix(self):
        # ring wrapped: a surviving epoch_end whose begin was dropped is
        # fine, but only until the core re-establishes pairing context
        doc = self._doc([
            {"t": "epoch_end", "core": 0, "ts": 10, "epoch": 3},
            {"t": "epoch_begin", "core": 0, "ts": 10, "epoch": 4},
            {"t": "epoch_end", "core": 0, "ts": 20, "epoch": 4},
        ], dropped=5)
        assert validate_events(doc) == []

    def test_untruncated_stream_rejects_orphan_end(self):
        doc = self._doc([
            {"t": "epoch_end", "core": 0, "ts": 10, "epoch": 3},
        ])
        assert any("without an open epoch" in e for e in validate_events(doc))

    def test_error_cap_respected(self):
        events = [
            {"t": "pred", "core": 0, "ts": 0, "epoch": 0}
            for _ in range(50)
        ]
        assert len(validate_events(self._doc(events), max_errors=4)) == 4

    def test_every_emitted_kind_is_declared(self, traced_doc):
        assert {e["t"] for e in traced_doc["events"]} <= EVENT_KINDS
