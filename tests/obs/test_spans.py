"""The span tracer: nesting, wire propagation, sinks, resource samples."""

import pytest

from repro.obs.spans import (
    SPAN_SCHEMA,
    SpanTracer,
    new_trace_id,
    resource_sample,
)


class TestSpanLifecycle:
    def test_start_finish_round_trip(self):
        tracer = SpanTracer(clock=iter([10.0, 12.5]).__next__)
        span = tracer.start("sweep", attrs={"cells": 3})
        assert span["schema"] == SPAN_SCHEMA
        assert span["trace"] == tracer.trace_id
        assert span["t0"] == 10.0 and span["t1"] is None
        tracer.finish(span)
        assert span["t1"] == 12.5
        assert tracer.records == [span]
        assert span["attrs"] == {"cells": 3}

    def test_nesting_links_parents(self):
        tracer = SpanTracer()
        root = tracer.start("sweep")
        child = tracer.start("dispatch", parent=root)
        assert child["parent"] == root["span_id"]
        assert root["parent"] is None
        assert child["span_id"] != root["span_id"]

    def test_finish_is_idempotent(self):
        clock = iter([1.0, 2.0, 99.0]).__next__
        tracer = SpanTracer(clock=clock)
        span = tracer.start("cell")
        tracer.finish(span)
        tracer.finish(span)  # second finish must not move t1
        assert span["t1"] == 2.0
        assert tracer.records == [span]

    def test_context_manager_flags_errors(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("run"):
                raise RuntimeError("boom")
        (span,) = tracer.records
        assert span["t1"] is not None
        assert span["attrs"]["error"] is True

    def test_span_ids_unique_across_tracers(self):
        # Worker processes build one tracer per cell; the module-level
        # counter must keep ids unique within the process regardless.
        a = SpanTracer().start("x")
        b = SpanTracer().start("x")
        assert a["span_id"] != b["span_id"]


class TestWirePropagation:
    def test_wire_and_from_wire(self):
        parent = SpanTracer()
        root = parent.start("sweep")
        wire = parent.wire(root)
        child = SpanTracer.from_wire(wire)
        assert child.trace_id == parent.trace_id
        span = child.start("cell")
        assert span["parent"] == root["span_id"]
        assert span["trace"] == parent.trace_id

    def test_wire_without_span_uses_root_parent(self):
        tracer = SpanTracer()
        trace_id, parent_id = tracer.wire()
        assert trace_id == tracer.trace_id
        assert parent_id is None


class TestSink:
    def test_sink_sees_open_and_close(self):
        seen = []
        tracer = SpanTracer(sink=lambda kind, rec: seen.append((kind, rec)))
        span = tracer.start("load")
        tracer.finish(span)
        kinds = [k for k, _ in seen]
        assert kinds == ["span_open", "span_close"]
        open_rec, close_rec = seen[0][1], seen[1][1]
        assert "t1" not in open_rec or open_rec.get("t1") is None
        assert close_rec["t1"] is not None

    def test_collect_merges_foreign_records(self):
        tracer = SpanTracer()
        foreign = {"span_id": "abc-1", "name": "cell", "t0": 1, "t1": 2}
        tracer.collect(foreign)
        assert foreign in tracer.records

    def test_summary_rolls_up_by_name(self):
        clock = iter([0.0, 1.0, 1.0, 3.0]).__next__
        tracer = SpanTracer(clock=clock)
        for _ in range(2):
            span = tracer.start("run")
            tracer.finish(span)
        summary = tracer.summary()
        assert summary == {"run": {"count": 2, "total_s": 3.0}}


class TestResourceSample:
    def test_sample_shape(self):
        sample = resource_sample(extra_counter=7)
        assert sample["pid"] > 0
        assert sample["extra_counter"] == 7
        # rusage fields degrade to absent, never to garbage
        for key in ("rss_kb", "cpu_user_s", "cpu_sys_s"):
            if key in sample:
                assert sample[key] >= 0

    def test_trace_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()
        assert len(new_trace_id()) == 16
