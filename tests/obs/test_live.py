"""Live sweep telemetry: progress line, ETA, stall alarms, heartbeats."""

import io
import queue

from repro.obs.live import HeartbeatListener, SweepProgress, stall_timeout


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_progress(total=4, stall_s=120.0):
    clock = FakeClock()
    stream = io.StringIO()
    progress = SweepProgress(
        total=total, stream=stream, enabled=True,
        stall_s=stall_s, clock=clock,
    )
    return progress, stream, clock


class TestSweepProgress:
    def test_status_line_counts_and_eta(self):
        progress, _, clock = make_progress(total=4)
        progress.start_cell("d1", "lu/directory/SP")
        progress.start_cell("d2", "fft/directory/SP")
        clock.advance(10)
        progress.finish_cell("d1")
        line = progress.status_line()
        assert "1/4 cells" in line
        assert "1 running" in line
        # 1 cell per 10s, 3 remaining -> ~30s eta
        assert "eta 30s" in line
        assert "10s elapsed" in line

    def test_renders_in_place(self):
        progress, stream, _ = make_progress(total=2)
        progress.start_cell("d1", "lu")
        progress.finish_cell("d1")
        out = stream.getvalue()
        assert out.count("\r") >= 2  # rewrites, not newline spam
        assert "[sweep]" in out

    def test_cell_times_collected(self):
        progress, _, clock = make_progress()
        progress.start_cell("d1", "lu")
        clock.advance(2.5)
        progress.finish_cell("d1")
        assert progress.cell_times["d1"] == 2.5
        # an explicit elapsed (from a worker heartbeat) wins
        progress.start_cell("d2", "fft")
        progress.finish_cell("d2", 7.0)
        assert progress.cell_times["d2"] == 7.0

    def test_stall_warning_names_the_cell_once(self):
        progress, stream, clock = make_progress(stall_s=30.0)
        progress.start_cell("d1", "ocean/directory/SP")
        clock.advance(31)
        progress.tick()
        progress.tick()  # second tick must not re-warn
        out = stream.getvalue()
        assert out.count("no heartbeat from ocean/directory/SP") == 1
        assert "stalled worker?" in out
        assert progress.stalled == ["ocean/directory/SP"]

    def test_no_stall_warning_before_timeout(self):
        progress, stream, clock = make_progress(stall_s=30.0)
        progress.start_cell("d1", "lu")
        clock.advance(10)
        progress.tick()
        assert "no heartbeat" not in stream.getvalue()
        assert progress.stalled == []

    def test_disabled_progress_writes_nothing(self):
        stream = io.StringIO()
        progress = SweepProgress(total=2, stream=stream, enabled=False)
        progress.start_cell("d1", "lu")
        progress.finish_cell("d1")
        progress.tick()
        progress.close()
        assert stream.getvalue() == ""

    def test_auto_detect_off_tty(self):
        # StringIO has no isatty -> treated as a pipe, display off
        progress = SweepProgress(total=1, stream=io.StringIO())
        assert progress.enabled is False

    def test_close_clears_the_line(self):
        progress, stream, _ = make_progress(total=1)
        progress.start_cell("d1", "lu")
        progress.close()
        assert stream.getvalue().endswith("\r")


class TestPhaseTracking:
    def test_stall_warning_names_the_phase(self):
        progress, stream, clock = make_progress(stall_s=30.0)
        progress.start_cell("d1", "ocean/directory/SP")
        progress.set_phase("d1", "run")
        clock.advance(31)
        progress.tick()
        out = stream.getvalue()
        assert "no heartbeat from ocean/directory/SP" in out
        assert "(stalled in run)" in out
        assert "stalled worker?" not in out

    def test_phase_change_rearms_the_warning(self):
        progress, stream, clock = make_progress(stall_s=30.0)
        progress.start_cell("d1", "lu/directory/SP")
        clock.advance(31)
        progress.tick()
        assert stream.getvalue().count("no heartbeat") == 1
        # a span beat proves the worker is alive: warn again only after
        # another full stall window of silence
        progress.set_phase("d1", "flush")
        progress.tick()
        assert stream.getvalue().count("no heartbeat") == 1
        clock.advance(31)
        progress.tick()
        assert stream.getvalue().count("no heartbeat") == 2
        assert "(stalled in flush)" in stream.getvalue()

    def test_listener_span_beats_drive_phases(self):
        import time

        def wait_for(cond):
            deadline = time.monotonic() + 5.0
            while not cond() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert cond()

        progress, stream, clock = make_progress(total=1, stall_s=30.0)
        beats = queue.Queue()
        listener = HeartbeatListener(beats, progress, poll_s=0.05)
        listener.start()
        beats.put(("start", "d1", "lu/directory/SP"))
        beats.put(("span_open", "d1",
                   {"span_id": "a-1", "name": "cell", "t0": 1.0}))
        beats.put(("span_open", "d1",
                   {"span_id": "a-2", "name": "run", "t0": 1.1,
                    "parent": "a-1"}))
        wait_for(lambda: progress._running.get("d1", ("", 0, 0, None))[3]
                 == "run")
        clock.advance(31)
        progress.tick()
        assert "(stalled in run)" in stream.getvalue()
        # closing the inner span falls back to the enclosing one
        beats.put(("span_close", "d1",
                   {"span_id": "a-2", "name": "run", "t0": 1.1,
                    "t1": 2.0}))
        wait_for(lambda: progress._running.get("d1", ("", 0, 0, None))[3]
                 == "cell")
        clock.advance(31)
        progress.tick()
        assert "(stalled in cell)" in stream.getvalue()
        beats.put(("finish", "d1", 1.5))
        listener.stop()
        assert progress.done == 1

    def test_listener_forwards_beats_to_sink(self):
        seen = []
        beats = queue.Queue()
        listener = HeartbeatListener(
            beats, progress=None, poll_s=0.05,
            sink=lambda kind, digest, payload:
                seen.append((kind, digest)),
            sample_s=3600.0,
        )
        listener.start()
        beats.put(("start", "d1", "lu"))
        beats.put(("span_open", "d1", {"span_id": "a-1", "name": "cell"}))
        beats.put(("span_close", "d1",
                   {"span_id": "a-1", "name": "cell", "t1": 2.0}))
        beats.put(("finish", "d1", 0.5))
        listener.stop()
        assert seen == [
            ("start", "d1"), ("span_open", "d1"),
            ("span_close", "d1"), ("finish", "d1"),
        ]

    def test_listener_emits_periodic_resource_samples(self):
        seen = []
        beats = queue.Queue()
        listener = HeartbeatListener(
            beats, progress=None, poll_s=0.01,
            sink=lambda kind, digest, payload:
                seen.append((kind, payload)),
            sample_s=0.0,  # sample on every loop iteration
        )
        listener.start()
        import time

        deadline = time.monotonic() + 5.0
        while not seen and time.monotonic() < deadline:
            time.sleep(0.01)
        listener.stop()
        kinds = {k for k, _ in seen}
        assert "resource" in kinds
        sample = next(p for k, p in seen if k == "resource")
        assert sample["pid"] > 0


class TestStallTimeout:
    def test_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_STALL_S", raising=False)
        assert stall_timeout() == 120.0
        monkeypatch.setenv("REPRO_STALL_S", "7.5")
        assert stall_timeout() == 7.5
        monkeypatch.setenv("REPRO_STALL_S", "nonsense")
        assert stall_timeout() == 120.0


class TestHeartbeatListener:
    def test_drains_beats_into_progress(self):
        progress, _, _ = make_progress(total=2)
        beats = queue.Queue()
        listener = HeartbeatListener(beats, progress, poll_s=0.05)
        listener.start()
        beats.put(("start", "d1", "lu/directory/SP"))
        beats.put(("finish", "d1", 1.5))
        beats.put(("start", "d2", "fft/directory/SP"))
        beats.put(("finish", "d2", 0.5))
        listener.stop()
        assert not listener.is_alive()
        assert progress.done == 2
        assert progress.cell_times == {"d1": 1.5, "d2": 0.5}

    def test_idle_listener_ticks_stall_check(self):
        progress, stream, clock = make_progress(stall_s=5.0)
        progress.start_cell("d1", "radix/directory/SP")
        clock.advance(6)
        beats = queue.Queue()
        listener = HeartbeatListener(beats, progress, poll_s=0.01)
        listener.start()
        import time

        deadline = time.monotonic() + 5.0
        while not progress.stalled and time.monotonic() < deadline:
            time.sleep(0.01)
        listener.stop()
        assert progress.stalled == ["radix/directory/SP"]

    def test_stop_is_idempotent(self):
        progress, _, _ = make_progress()
        listener = HeartbeatListener(queue.Queue(), progress, poll_s=0.05)
        listener.start()
        listener.stop()
        listener.stop()
        assert not listener.is_alive()


class TestRunnerProgressIntegration:
    def test_serial_sweep_drives_progress(self):
        from repro.runner import RunSpec, SweepRunner

        stream = io.StringIO()
        runner = SweepRunner(
            jobs=1, disk=None, progress=True, progress_stream=stream,
            ledger=False,
        )
        runner.run_many([
            RunSpec(workload="lu", scale=0.05),
            RunSpec(workload="lu", scale=0.05, predictor="SP"),
        ])
        out = stream.getvalue()
        assert "[sweep] 2/2 cells" in out
        assert len(runner.cell_times) == 2

    def test_progress_false_suppresses(self):
        from repro.runner import RunSpec, SweepRunner

        stream = io.StringIO()
        runner = SweepRunner(
            jobs=1, disk=None, progress=False, progress_stream=stream,
            ledger=False,
        )
        runner.run_many([RunSpec(workload="lu", scale=0.05)])
        assert stream.getvalue() == ""
