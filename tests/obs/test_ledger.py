"""The run ledger: append-only store, lookups, gc, non-perturbation."""

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LedgerError,
    RunLedger,
    default_ledger_dir,
    ledger_enabled,
    record_run,
)


def make_ledger(tmp_path) -> RunLedger:
    return RunLedger(tmp_path / "ledger")


def sample_metrics(misses=100):
    return {
        "schema": 1,
        "cells": [{
            "workload": "lu", "protocol": "directory", "predictor": "SP",
            "counters": {"misses": misses},
            "gauges": {"comm_ratio": 0.4},
        }],
        "aggregate": {
            "counters": {"misses": misses},
            "gauges": {"comm_ratio": 0.4},
        },
    }


class TestRecordAndRead:
    def test_round_trip(self, tmp_path):
        ledger = make_ledger(tmp_path)
        run_id = ledger.record(
            "sweep", metrics=sample_metrics(),
            phases={"sweep_s": 1.25}, label="probe",
        )
        assert len(run_id) == 16
        entries = ledger.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["run_id"] == run_id
        assert entry["schema"] == LEDGER_SCHEMA
        assert entry["kind"] == "sweep"
        assert entry["label"] == "probe"
        assert entry["phases"] == {"sweep_s": 1.25}
        assert entry["metrics"]["cells"][0]["counters"]["misses"] == 100
        assert "created" in entry and "host" in entry

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown ledger entry kind"):
            make_ledger(tmp_path).record("party")

    def test_get_by_prefix(self, tmp_path):
        ledger = make_ledger(tmp_path)
        a = ledger.record("sweep", metrics=sample_metrics(1))
        b = ledger.record("sweep", metrics=sample_metrics(2))
        assert ledger.get(a)["run_id"] == a
        assert ledger.get(a[:6])["run_id"] == a
        assert ledger.get(b[:6])["run_id"] == b

    def test_get_missing_raises(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record("sweep", metrics=sample_metrics())
        with pytest.raises(LedgerError, match="no ledger entry"):
            ledger.get("zzzzzz")
        with pytest.raises(LedgerError, match="empty run id"):
            ledger.get("")

    def test_get_ambiguous_raises(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ids = {
            ledger.record("sweep", metrics=sample_metrics(i))
            for i in range(40)
        }
        prefix = ""  # grow the prefix until it matches >1 id
        for length in range(1, 16):
            candidates = {i[:length] for i in ids}
            if len(candidates) < len(ids):
                prefix = next(
                    c for c in candidates
                    if sum(i.startswith(c) for i in ids) > 1
                )
                break
        assert prefix, "40 ids should collide on some short prefix"
        with pytest.raises(LedgerError, match="ambiguous"):
            ledger.get(prefix)

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        ledger = make_ledger(tmp_path)
        good = ledger.record("sweep", metrics=sample_metrics())
        segment = ledger.segments()[0]
        with open(segment, "a") as fh:
            fh.write('{"torn": \n')  # a crashed writer's partial line
            fh.write("[1, 2, 3]\n")  # parseable but not an entry
        entries = ledger.entries()
        assert [e["run_id"] for e in entries] == [good]
        assert ledger.corrupt_lines == 2
        # lookups still work over the damaged store
        assert ledger.get(good)["run_id"] == good

    def test_content_addressed_ids_differ(self, tmp_path):
        ledger = make_ledger(tmp_path)
        a = ledger.record("sweep", metrics=sample_metrics(1))
        b = ledger.record("sweep", metrics=sample_metrics(2))
        assert a != b


class TestMaintenance:
    def test_gc_keeps_newest(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ids = [
            ledger.record("sweep", metrics=sample_metrics(i))
            for i in range(10)
        ]
        removed = ledger.gc(keep=3)
        assert removed == 7
        assert [e["run_id"] for e in ledger.entries()] == ids[-3:]
        # a second gc below the floor is a no-op
        assert ledger.gc(keep=5) == 0

    def test_gc_older_than_drops_by_created_stamp(self, tmp_path):
        from datetime import datetime, timedelta, timezone

        ledger = make_ledger(tmp_path)
        old_id = ledger.record("sweep", metrics=sample_metrics(1))
        new_id = ledger.record("sweep", metrics=sample_metrics(2))
        # age the first entry ten days by rewriting its stamp (the id
        # is content-addressed over the *original* body, so re-derive)
        segment = ledger.segments()[0]
        entries = [json.loads(line) for line in
                   segment.read_text().splitlines()]
        stamp = (
            datetime.now(timezone.utc) - timedelta(days=10)
        ).strftime("%Y-%m-%dT%H:%M:%SZ")
        entries[0]["created"] = stamp
        segment.write_text(
            "".join(json.dumps(e) + "\n" for e in entries)
        )
        fresh = RunLedger(ledger.root)
        assert fresh.gc(older_than_days=30) == 0
        assert fresh.gc(older_than_days=5) == 1
        survivors = [e["run_id"] for e in RunLedger(ledger.root).entries()]
        assert survivors == [new_id]
        assert old_id not in survivors

    def test_gc_unparsable_created_never_age_collected(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record("sweep", metrics=sample_metrics(1))
        segment = ledger.segments()[0]
        entry = json.loads(segment.read_text())
        entry["created"] = "not-a-date"
        segment.write_text(json.dumps(entry) + "\n")
        assert RunLedger(ledger.root).gc(older_than_days=0) == 0

    def test_gc_max_bytes_drops_oldest_first(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ids = [
            ledger.record("sweep", metrics=sample_metrics(i))
            for i in range(6)
        ]
        per_entry = len(
            json.dumps(ledger.entries()[0], sort_keys=True, default=str)
        ) + 1
        removed = ledger.gc(max_bytes=3 * per_entry + per_entry // 2)
        assert removed == 3
        assert [e["run_id"] for e in ledger.entries()] == ids[-3:]

    def test_gc_criteria_compose(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ids = [
            ledger.record("sweep", metrics=sample_metrics(i))
            for i in range(5)
        ]
        # nothing is old, size is generous, but keep trims to 2
        removed = ledger.gc(
            keep=2, older_than_days=365, max_bytes=10_000_000
        )
        assert removed == 3
        assert [e["run_id"] for e in ledger.entries()] == ids[-2:]

    def test_gc_dry_run_changes_nothing(self, tmp_path):
        ledger = make_ledger(tmp_path)
        for i in range(5):
            ledger.record("sweep", metrics=sample_metrics(i))
        before = ledger.entries()
        assert ledger.gc(keep=2, dry_run=True) == 3
        assert RunLedger(ledger.root).entries() == before

    def test_gc_negative_criteria_rejected(self, tmp_path):
        ledger = make_ledger(tmp_path)
        with pytest.raises(ValueError):
            ledger.gc(keep=-1)
        with pytest.raises(ValueError):
            ledger.gc(older_than_days=-1)
        with pytest.raises(ValueError):
            ledger.gc(max_bytes=-1)

    def test_gc_compacts_rotated_segments(self, tmp_path, monkeypatch):
        import repro.obs.ledger as ledger_mod

        monkeypatch.setattr(ledger_mod, "SEGMENT_MAX_BYTES", 512)
        ledger = make_ledger(tmp_path)
        ids = [
            ledger.record("sweep", metrics=sample_metrics(i))
            for i in range(8)
        ]
        assert len(ledger.segments()) > 1
        assert ledger.gc(keep=2) == 6
        compacted = RunLedger(ledger.root)
        assert len(compacted.segments()) == 1
        assert [e["run_id"] for e in compacted.entries()] == ids[-2:]

    def test_export(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record("sweep", metrics=sample_metrics(1))
        ledger.record("bench", extra={"sweep_s": 2.0})
        out = tmp_path / "export.json"
        assert ledger.export(out) == 2
        doc = json.loads(out.read_text())
        assert [e["kind"] for e in doc] == ["sweep", "bench"]

    def test_import_round_trip(self, tmp_path):
        """export -> import into a fresh ledger -> identical entries,
        identical content-addressed ids; re-import is a no-op."""
        src = RunLedger(tmp_path / "src")
        ids = {
            src.record("sweep", metrics=sample_metrics(1)),
            src.record("bench", extra={"sweep_s": 2.0}),
        }
        out = tmp_path / "export.json"
        src.export(out)

        dst = RunLedger(tmp_path / "dst")
        counts = dst.import_entries(out)
        assert counts == {"imported": 2, "duplicates": 0, "rejected": 0}
        assert {e["run_id"] for e in dst.entries()} == ids
        assert dst.entries() == src.entries()

        # Idempotent: importing the same export again adds nothing.
        counts = dst.import_entries(out)
        assert counts == {"imported": 0, "duplicates": 2, "rejected": 0}
        assert len(dst.entries()) == 2

        # Merging into a ledger that already has its own history
        # interleaves rather than duplicates.
        dst.record("check", extra={"grid": "quick"})
        counts = dst.import_entries(out)
        assert counts["imported"] == 0 and counts["duplicates"] == 2
        assert len(dst.entries()) == 3

    def test_import_accepts_raw_jsonl_segment(self, tmp_path):
        src = RunLedger(tmp_path / "src")
        rid = src.record("bench", extra={"sweep_s": 1.0})
        segment = src.segments()[0]
        dst = RunLedger(tmp_path / "dst")
        counts = dst.import_entries(segment)
        assert counts == {"imported": 1, "duplicates": 0, "rejected": 0}
        assert dst.entries()[0]["run_id"] == rid

    def test_import_rejects_tampered_entries(self, tmp_path):
        """The content-addressed id is the integrity check: an entry
        whose body no longer hashes to its run_id must not merge."""
        src = RunLedger(tmp_path / "src")
        src.record("bench", extra={"sweep_s": 1.0})
        entries = src.entries()
        entries[0]["extra"]["sweep_s"] = 99.0  # tamper, keep old id
        out = tmp_path / "tampered.json"
        out.write_text(json.dumps(entries))
        dst = RunLedger(tmp_path / "dst")
        counts = dst.import_entries(out)
        assert counts == {"imported": 0, "duplicates": 0, "rejected": 1}
        assert dst.entries() == []

    def test_import_non_array_document_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a list"}')
        dst = RunLedger(tmp_path / "dst")
        with pytest.raises(LedgerError):
            dst.import_entries(bad)

    def test_segment_rotation(self, tmp_path, monkeypatch):
        import repro.obs.ledger as ledger_mod

        monkeypatch.setattr(ledger_mod, "SEGMENT_MAX_BYTES", 512)
        ledger = make_ledger(tmp_path)
        for i in range(8):
            ledger.record("sweep", metrics=sample_metrics(i))
        assert len(ledger.segments()) > 1
        assert len(ledger.entries()) == 8


class TestEnvironmentGates:
    def test_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "elsewhere"))
        assert default_ledger_dir() == tmp_path / "elsewhere"
        run_id = record_run("sweep", metrics=sample_metrics())
        assert run_id is not None
        assert RunLedger().get(run_id)["kind"] == "sweep"

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "off"))
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert not ledger_enabled()
        assert RunLedger.from_env() is None
        assert record_run("sweep", metrics=sample_metrics()) is None
        assert not (tmp_path / "off").exists()

    def test_record_run_swallows_write_errors(self, tmp_path, monkeypatch):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the ledger dir should be\n")
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(blocker))
        assert record_run("sweep", metrics=sample_metrics()) is None


class TestSweepIntegration:
    def test_sweep_records_entry_with_cell_times(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        from repro.runner import RunSpec, SweepRunner

        specs = [
            RunSpec(workload="lu", scale=0.05),
            RunSpec(workload="lu", scale=0.05, predictor="SP"),
        ]
        runner = SweepRunner(jobs=1, disk=None, progress=False)
        runner.run_many(specs)
        assert runner.last_run_id is not None
        entry = RunLedger().get(runner.last_run_id)
        assert entry["kind"] == "sweep"
        assert len(entry["spec_digests"]) == 2
        assert set(entry["cell_times"]) == set(entry["spec_digests"])
        assert all(t >= 0 for t in entry["cell_times"].values())
        assert entry["extra"]["cells_simulated"] == 2
        assert len(entry["metrics"]["cells"]) == 2
        assert entry["phases"]["sweep_s"] >= 0

    def test_cached_sweep_not_recorded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        from repro.runner import RunSpec, SweepRunner

        spec = RunSpec(workload="lu", scale=0.05)
        runner = SweepRunner(jobs=1, disk=None, progress=False)
        runner.run_many([spec])
        first = runner.last_run_id
        runner.run_many([spec])  # fully memoized: nothing simulated
        assert runner.last_run_id == first
        assert len(RunLedger().entries()) == 1

    def test_ledger_does_not_perturb_counters(self, tmp_path, monkeypatch):
        """Bit-identical results with the ledger on vs. off."""
        from repro.runner import RunSpec, SweepRunner

        spec = RunSpec(workload="lu", scale=0.05, predictor="SP")

        monkeypatch.setenv("REPRO_LEDGER", "0")
        off = SweepRunner(jobs=1, disk=None, progress=False)
        off_result = off.run_many([spec])[0].to_dict()

        monkeypatch.setenv("REPRO_LEDGER", "1")
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        on = SweepRunner(jobs=1, disk=None, progress=False)
        on_result = on.run_many([spec])[0].to_dict()

        assert off_result == on_result
        assert on.last_run_id is not None
