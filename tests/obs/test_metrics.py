"""MetricsRegistry and the result -> metrics distillation."""

import json

from repro.obs import aggregate_metrics, hop_distribution, metrics_from_result
from repro.obs.metrics import MetricsRegistry, accuracy_over_time
from repro.sim.machine import MachineConfig


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("misses")
        reg.count("misses", 4)
        assert reg.counters["misses"] == 5

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.gauge("accuracy", 0.5)
        reg.gauge("accuracy", 0.7)
        assert reg.gauges["accuracy"] == 0.7

    def test_histogram_buckets_stringified_and_sorted(self):
        reg = MetricsRegistry()
        reg.observe("lat", 10)
        reg.observe("lat", 2, weight=3)
        reg.observe("lat", 10)
        dump = reg.to_dict()["histograms"]["lat"]
        assert dump == {"2": 3, "10": 2}
        assert list(dump) == ["2", "10"]  # numeric sort, then str keys

    def test_dump_is_json_safe(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.gauge("b", 1.5)
        reg.observe("c", 7)
        json.dumps(reg.to_dict())


class TestHopDistribution:
    def test_weights_volume_by_mesh_distance(self):
        mesh = MachineConfig().mesh()
        # core 0 -> 1 is adjacent (1 hop) on the 4x4 mesh; 0 -> 15 is
        # the far corner (6 hops); diagonal (self) volume is skipped
        volume = [[0] * 16 for _ in range(16)]
        volume[0][1] = 10
        volume[0][15] = 2
        volume[3][3] = 99
        hist = hop_distribution(volume, mesh)
        assert hist[mesh.hops(0, 1)] == 10
        assert hist[mesh.hops(0, 15)] == 2
        assert sum(hist.values()) == 12


class TestResultMetrics:
    def test_counters_match_result(self, traced_run):
        result, _ = traced_run
        payload = metrics_from_result(result, machine=MachineConfig())
        assert payload["counters"]["misses"] == result.misses
        assert payload["counters"]["comm_misses"] == result.comm_misses
        assert payload["counters"]["pred_correct"] == result.pred_correct
        assert payload["gauges"]["accuracy"] == round(result.accuracy, 6)

    def test_histograms_cover_all_misses(self, traced_run):
        result, _ = traced_run
        payload = metrics_from_result(result, machine=MachineConfig())
        lat = payload["histograms"]["miss_latency"]
        assert sum(lat.values()) == result.misses
        epoch_hist = payload["histograms"]["epoch_misses"]
        assert sum(epoch_hist.values()) == len(result.epoch_records)
        hops = payload["histograms"]["noc_hops"]
        assert all(int(k) >= 1 for k in hops)

    def test_timeline_partitions_epochs(self, traced_run):
        result, _ = traced_run
        timeline = accuracy_over_time(result, buckets=10)
        assert sum(b["epochs"] for b in timeline) == len(result.epoch_records)
        assert sum(b["misses"] for b in timeline) == sum(
            r.misses for r in result.epoch_records
        )

    def test_timeline_empty_without_epochs(self, traced_run):
        class Hollow:
            epoch_records = []

        assert accuracy_over_time(Hollow()) == []

    def test_payload_json_safe(self, traced_run):
        result, _ = traced_run
        json.dumps(metrics_from_result(result, machine=MachineConfig()))


class TestAggregate:
    def test_sums_counters_and_derives_ratios(self):
        cells = [
            {"counters": {"misses": 10, "comm_misses": 4,
                          "pred_correct": 2}},
            {"counters": {"misses": 30, "comm_misses": 16,
                          "pred_correct": 8}},
        ]
        agg = aggregate_metrics(cells)
        assert agg["counters"]["misses"] == 40
        assert agg["gauges"]["cells"] == 2
        assert agg["gauges"]["comm_ratio"] == 0.5
        assert agg["gauges"]["accuracy"] == 0.5

    def test_empty_sweep_is_sane(self):
        agg = aggregate_metrics([])
        assert agg["gauges"]["cells"] == 0
        assert agg["gauges"]["comm_ratio"] == 0.0


class TestSchemaStamp:
    """Satellite: every metrics payload carries its schema version."""

    def test_cell_payload_stamped(self, traced_run):
        from repro.obs import METRICS_SCHEMA

        result, _ = traced_run
        payload = metrics_from_result(result)
        assert payload["schema"] == METRICS_SCHEMA == 1

    def test_aggregate_stamped(self):
        from repro.obs import METRICS_SCHEMA

        assert aggregate_metrics([])["schema"] == METRICS_SCHEMA

    def test_save_metrics_stamps_unversioned_payloads(self, tmp_path):
        from repro.obs import METRICS_SCHEMA, save_metrics

        path = tmp_path / "m.json"
        save_metrics({"cells": []}, path)
        assert json.loads(path.read_text())["schema"] == METRICS_SCHEMA
        # an explicit stamp is preserved, not overwritten
        save_metrics({"schema": 99, "cells": []}, path)
        assert json.loads(path.read_text())["schema"] == 99

    def test_runner_payload_stamped(self):
        from repro.obs import METRICS_SCHEMA
        from repro.runner import SweepRunner

        payload = SweepRunner(jobs=1, ledger=False).metrics_payload()
        assert payload["schema"] == METRICS_SCHEMA
