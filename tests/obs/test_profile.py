"""PhaseTimer, cProfile wrapping, and host metadata."""

import json
import time

from repro.obs import PhaseTimer, host_metadata, profile_call


class TestPhaseTimer:
    def test_phases_accumulate_in_first_use_order(self):
        timer = PhaseTimer()
        with timer.phase("b"):
            pass
        with timer.phase("a"):
            time.sleep(0.01)
        with timer.phase("b"):
            pass
        breakdown = timer.breakdown()
        assert list(breakdown) == ["b", "a", "total_s"]
        assert breakdown["a"] >= 0.01
        assert breakdown["total_s"] >= breakdown["a"]

    def test_phase_recorded_even_on_exception(self):
        timer = PhaseTimer()
        try:
            with timer.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in timer.phases

    def test_render_lists_every_phase(self):
        timer = PhaseTimer()
        with timer.phase("simulate"):
            pass
        text = timer.render()
        assert "simulate" in text
        assert "total" in text
        assert "%" in text

    def test_breakdown_json_safe(self):
        timer = PhaseTimer()
        with timer.phase("x"):
            pass
        json.dumps(timer.breakdown())


class TestProfileCall:
    def test_returns_result_and_top_functions(self):
        def work(n):
            return sum(range(n))

        result, stats_text, top = profile_call(work, 1000, limit=5)
        assert result == sum(range(1000))
        assert "cumulative" in stats_text
        assert len(top) <= 5
        assert all(
            set(row) == {"function", "calls", "tottime_s", "cumtime_s"}
            for row in top
        )
        json.dumps(top)

    def test_kwargs_forwarded(self):
        result, _, _ = profile_call(divmod, 7, 2)
        assert result == (3, 1)


class TestHostMetadata:
    def test_fields_present_and_json_safe(self):
        meta = host_metadata()
        assert meta["cpu_count"] >= 1
        assert meta["python"].count(".") == 2
        assert meta["implementation"]
        # inside the repo this resolves to the checked-out commit
        assert meta["git_sha"] is None or len(meta["git_sha"]) == 40
        json.dumps(meta)
