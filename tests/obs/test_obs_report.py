"""Terminal report: epoch table, accuracy timeline, drill-down."""

from repro.obs import accuracy_timeline, epoch_detail, epoch_table, render_report


class TestEpochTable:
    def test_rows_merge_begin_context(self, traced_doc):
        rows = epoch_table(traced_doc)
        ends = [e for e in traced_doc["events"] if e["t"] == "epoch_end"]
        assert len(rows) == len(ends)
        sp_rows = [r for r in rows if r["key"] is not None]
        assert sp_rows, "a real run must have keyed epochs"
        assert all(r["kind"] is not None for r in rows)

    def test_stats_totals_match_result(self, traced_run, traced_doc):
        result, tracer = traced_run
        assert tracer.dropped == 0  # totals only meaningful untruncated
        rows = epoch_table(traced_doc)
        assert sum(r["misses"] for r in rows) == result.misses
        assert sum(r["correct"] for r in rows) == result.pred_correct


class TestAccuracyTimeline:
    def test_buckets_partition_epochs(self, traced_doc):
        timeline = accuracy_timeline(traced_doc, buckets=12)
        assert len(timeline) == 12
        assert sum(b["epochs"] for b in timeline) == len(
            epoch_table(traced_doc)
        )
        for b in timeline:
            if b["preds"]:
                assert b["accuracy"] == b["correct"] / b["preds"]
            else:
                assert b["accuracy"] is None

    def test_empty_doc(self):
        assert accuracy_timeline({"events": []}) == []


class TestRenderReport:
    def test_full_report_sections(self, traced_doc):
        text = render_report(traced_doc)
        assert "event stream: lu / directory / SP" in text
        assert "0 dropped" in text
        assert "prediction accuracy over run" in text
        assert "trend: [" in text
        assert "overall: " in text

    def test_drill_down_lists_epochs(self, traced_doc):
        text = render_report(traced_doc, core=1, limit=5)
        assert "core 1:" in text
        assert "epoch " in text

    def test_drill_down_shows_mispredictions(self):
        doc = {
            "meta": {}, "dropped": 0, "capacity": 16,
            "events": [
                {"t": "epoch_begin", "core": 0, "ts": 0, "epoch": 0,
                 "key": ["pc", 400], "kind": "barrier"},
                {"t": "pred", "core": 0, "ts": 40, "epoch": 0, "miss": 1,
                 "kind": "read", "predicted": [2], "actual": [3],
                 "correct": False, "source": "history"},
                {"t": "epoch_end", "core": 0, "ts": 90, "epoch": 0,
                 "dur": 90, "misses": 1, "comm": 1, "preds": 1,
                 "correct": 0},
            ],
        }
        text = epoch_detail(doc, 0)
        assert "predicted [2] actual [3]" in text
        assert "source history" in text

    def test_empty_stream_degrades_gracefully(self):
        text = render_report({"meta": {}, "events": [], "dropped": 0})
        assert "no closed epochs" in text

    def test_unknown_core_degrades_gracefully(self, traced_doc):
        assert "no closed epochs" in epoch_detail(traced_doc, 999)
