"""Prediction forensics: classifier rules, attach contract, goldens.

Three layers of coverage:

* ``classify_miss`` as a pure function — one case per taxonomy rule,
  in the first-match-wins order the module docstring documents.
* The engine attach contract — counters bit-identical with forensics
  on/off on all three engine paths, and the produced doc consistent
  with the result counters for every predictor kind and quantum.
* Pinned golden taxonomy docs for two suite workloads, regenerated
  (after an intentional classifier change) with::

      PYTHONPATH=src python tests/obs/test_forensics.py
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.obs import (
    ForensicsCollector,
    classify_miss,
    expected_mispredicts,
    validate_forensics,
)
from repro.obs.forensics import TAXONOMY
from repro.predictors.factory import PREDICTOR_KINDS
from repro.sim.engine import SimulationEngine
from repro.sim.machine import MachineConfig
from repro.workloads import load_benchmark

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "data" / "forensics"

#: Two suite workloads whose taxonomy decomposition is pinned.
GOLDEN_WORKLOADS = ("lu", "x264")
GOLDEN_SCALE = 0.05

#: The trimmed, order-stable view of a forensics doc that the goldens
#: pin (examples carry raw pointers and are exercised elsewhere).
GOLDEN_KEYS = (
    "workload", "protocol", "predictor", "mispredicts", "taxonomy",
    "by_sync",
)

#: The three engine loops, as (label, engine kwargs).
ENGINE_PATHS = (
    ("interp", {"use_compiled": False, "use_vector": False}),
    ("compiled", {"use_compiled": True, "use_vector": False}),
    ("vector", {"use_vector": True}),
)


def run_forensics(name, *, scale=0.05, predictor="SP", machine=None,
                  **engine_kw):
    """One benchmark run with a collector attached: (result, doc)."""
    workload = load_benchmark(name, scale=scale)
    forensics = ForensicsCollector()
    result = SimulationEngine(
        workload, machine=machine, predictor=predictor,
        forensics=forensics, **engine_kw,
    ).run()
    return result, forensics.to_doc()


class TestClassifyMiss:
    """One case per classifier rule, in rule order."""

    def test_correct_prediction_is_not_a_mispredict(self):
        assert classify_miss([1], [1], True, True, {}) is None

    def test_silent_noncommunicating_miss_is_not_a_mispredict(self):
        assert classify_miss(None, [], None, False, None) is None

    def test_prediction_on_noncommunicating_miss_is_over_prediction(self):
        assert classify_miss(
            [1], [], None, False, {"present": True}
        ) == "over-prediction"

    def test_uncovered_after_eviction_is_evicted_entry(self):
        prov = {"present": False, "prior_evictions": 2}
        assert classify_miss(None, [1], None, True, prov) == "evicted-entry"

    def test_uncovered_with_no_history_is_cold_sync(self):
        assert classify_miss(
            None, [1], None, True, {"present": False}
        ) == "cold-sync"

    def test_uncovered_untrained_entry_is_cold_sync(self):
        prov = {"present": True, "trains": 0}
        assert classify_miss(None, [1], None, True, prov) == "cold-sync"

    def test_uncovered_in_warmup_is_cold_sync(self):
        prov = {"present": True, "trains": 5, "warmup": True}
        assert classify_miss(None, [1], None, True, prov) == "cold-sync"

    def test_uncovered_trained_entry_falls_through_to_history(self):
        prov = {"present": True, "trains": 4, "ever_seen": [1, 2]}
        assert classify_miss(None, [3], None, True, prov) == "first-sharing"

    def test_stale_migration_wins_for_incorrect_prediction(self):
        prov = {
            "stale_migration": True, "reinserted_after_evict": True,
            "shallow": True, "ever_seen": [1, 2],
        }
        assert classify_miss([1], [2], False, True, prov) == "migration"

    def test_reinserted_shallow_entry_is_capacity_conflict(self):
        prov = {
            "reinserted_after_evict": True, "shallow": True,
            "ever_seen": [1, 2],
        }
        assert classify_miss(
            [1], [2], False, True, prov
        ) == "capacity-conflict"

    def test_d0_hot_set_mispredict_is_cold_sync(self):
        prov = {"source": "d0", "ever_seen": [1, 2]}
        assert classify_miss([1], [2], False, True, prov) == "cold-sync"

    def test_never_seen_sharer_is_first_sharing(self):
        prov = {"present": True, "trains": 3, "ever_seen": [1]}
        assert classify_miss([1], [2], False, True, prov) == "first-sharing"

    def test_known_sharers_wrong_signature_is_stale_signature(self):
        prov = {"present": True, "trains": 3, "ever_seen": [1, 2]}
        assert classify_miss(
            [1], [2], False, True, prov
        ) == "stale-signature"

    def test_no_provenance_is_other(self):
        assert classify_miss([1], [2], False, True, None) == "other"

    def test_every_rule_lands_in_the_closed_taxonomy(self):
        cases = [
            ([1], [], None, False, {}),
            (None, [1], None, True, {"present": False}),
            ([1], [2], False, True, None),
            ([1], [2], False, True, {"ever_seen": [1]}),
        ]
        for case in cases:
            assert classify_miss(*case) in TAXONOMY


class TestEngineAttach:
    """The tracer-grade attach contract on all three engine loops."""

    @pytest.mark.parametrize("name", ("lu", "fft"))
    def test_counters_bit_identical_on_off_all_paths(self, name):
        reference = None
        for label, engine_kw in ENGINE_PATHS:
            workload = load_benchmark(name, scale=0.05)
            plain = SimulationEngine(
                workload, predictor="SP", **engine_kw
            ).run().to_dict()
            result, doc = run_forensics(name, **engine_kw)
            attached = result.to_dict()
            assert attached == plain, f"forensics perturbed {label}"
            if reference is None:
                reference = plain
            assert plain == reference, f"{label} diverged across paths"
            assert validate_forensics(doc, attached) == []

    def test_taxonomy_identical_across_paths(self):
        docs = [
            run_forensics("lu", **engine_kw)[1]
            for _, engine_kw in ENGINE_PATHS
        ]
        assert docs[0]["taxonomy"] == docs[1]["taxonomy"]
        assert docs[0]["taxonomy"] == docs[2]["taxonomy"]
        assert docs[0]["by_sync"] == docs[1]["by_sync"]
        assert docs[0]["by_sync"] == docs[2]["by_sync"]

    @pytest.mark.parametrize("quantum", (1, 400, 100000))
    @pytest.mark.parametrize("kind", PREDICTOR_KINDS)
    def test_every_predictor_kind_and_quantum_validates(
        self, kind, quantum
    ):
        machine = replace(MachineConfig(), quantum=quantum)
        result, doc = run_forensics(
            "fft", scale=0.05, predictor=kind, machine=machine
        )
        payload = result.to_dict()
        errors = validate_forensics(doc, payload)
        assert errors == [], f"{kind}@q{quantum}: {errors}"
        assert sum(doc["taxonomy"].values()) == doc["mispredicts"]
        if kind != "none":
            assert doc["mispredicts"] == expected_mispredicts(payload)

    def test_capacity_cap_still_attributes_every_mispredict(self):
        # A 2-entry SP table forces evictions; the eviction-echo
        # classes may appear but attribution must stay exact.
        result, doc = run_forensics(
            "lu", predictor="SP", predictor_entries=2
        )
        assert validate_forensics(doc, result.to_dict()) == []

    def test_example_chains_carry_provenance(self):
        _, doc = run_forensics("lu")
        assert doc["examples"], "lu run produced no mispredict examples"
        for name, items in doc["examples"].items():
            assert name in TAXONOMY
            for item in items:
                assert sorted(item["actual"]) == item["actual"]
                assert "provenance" in item


@pytest.mark.parametrize("name", GOLDEN_WORKLOADS)
class TestGoldenTaxonomy:
    """The pinned decomposition for two suite workloads.

    A diff here is either a real classifier/predictor change (update
    the golden intentionally) or an attribution regression.
    """

    def test_matches_golden(self, name):
        result, doc = run_forensics(name, scale=GOLDEN_SCALE)
        assert validate_forensics(doc, result.to_dict()) == []
        trimmed = {key: doc[key] for key in GOLDEN_KEYS}
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        assert trimmed == golden


if __name__ == "__main__":
    # Regenerate the goldens after an intentional classifier change.
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name in GOLDEN_WORKLOADS:
        result, doc = run_forensics(name, scale=GOLDEN_SCALE)
        errors = validate_forensics(doc, result.to_dict())
        if errors:
            raise SystemExit(f"{name}: inconsistent doc: {errors}")
        out = GOLDEN_DIR / f"{name}.json"
        trimmed = {key: doc[key] for key in GOLDEN_KEYS}
        out.write_text(
            json.dumps(trimmed, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {out}")
