"""The telemetry feed: writer discipline, tolerant reads, strict checks."""

import json

import pytest

from repro.obs.feed import (
    FEED_SCHEMA,
    FeedError,
    FeedWriter,
    feed_spans,
    follow_feed,
    last_session,
    read_feed,
    validate_feed,
)
from repro.obs.spans import SpanTracer


def write_session(path, cells=2, close=True, trace="cafe"):
    """One well-formed session: spans via a real tracer, cell beats."""
    writer = FeedWriter(path, trace=trace, meta={"jobs": 1})
    tracer = SpanTracer(trace_id=trace, sink=writer.span_sink)
    root = tracer.start("sweep")
    for i in range(cells):
        digest = f"d{i:02d}" * 6
        writer.record("cell_start", digest=digest, label=f"cell-{i}")
        with tracer.span("cell", parent=root):
            pass
        writer.record("cell_finish", digest=digest, wall_s=0.1)
    tracer.finish(root)
    if close:
        writer.close()
    else:
        writer._fh.close()
    return writer


class TestWriter:
    def test_round_trip_validates_strictly(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_session(path, cells=3)
        report = validate_feed(path)
        assert report.passed
        assert report.errors == []
        assert report.sessions == 1
        assert report.cells == 3
        assert report.spans == 4  # 3 cell spans + the root
        assert not report.truncated and not report.open_tail

    def test_header_and_stamps(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_session(path, cells=1)
        records = read_feed(path)
        head = records[0]
        assert head["kind"] == "feed_open"
        assert head["schema"] == FEED_SCHEMA
        assert head["trace"] == "cafe"
        assert head["jobs"] == 1
        assert [r["seq"] for r in records] == list(range(len(records)))
        times = [r["ts"] for r in records]
        assert times == sorted(times)
        assert records[-1]["kind"] == "feed_close"
        assert records[-1]["records"] == len(records) - 1

    def test_fields_cannot_override_stamps(self, tmp_path):
        writer = FeedWriter(tmp_path / "feed.jsonl")
        writer.record("metric", seq=999, ts=-1, value=3)
        writer.close()
        records = read_feed(tmp_path / "feed.jsonl")
        metric = records[1]
        assert metric["kind"] == "metric"
        assert metric["seq"] == 1 and metric["ts"] > 0
        assert metric["value"] == 3

    def test_io_failure_flips_failed_not_raises(self, tmp_path):
        writer = FeedWriter(tmp_path / "feed.jsonl")
        writer._fh.close()  # simulate the disk going away mid-sweep
        writer.record("metric", value=1)
        assert writer.failed
        writer.record("metric", value=2)  # still silent
        writer.close()

    def test_unwritable_path_raises_loudly(self, tmp_path):
        blocker = tmp_path / "dir-where-file-should-be"
        blocker.mkdir()
        with pytest.raises(OSError):
            FeedWriter(blocker)

    def test_multiple_sessions_append(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_session(path, cells=1, trace="aa")
        write_session(path, cells=2, trace="bb")
        report = validate_feed(path)
        assert report.passed and report.sessions == 2
        tail = last_session(read_feed(path))
        assert tail[0]["trace"] == "bb"
        assert sum(1 for r in tail if r["kind"] == "cell_finish") == 2


class TestValidation:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_session(path)
        with open(path, "a") as fh:
            fh.write('{"seq": 99, "kind": "met')  # caught mid-write
        report = validate_feed(path)
        assert report.passed
        assert report.truncated

    def test_mid_file_garbage_is_an_error(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_session(path)
        lines = path.read_text().splitlines()
        lines.insert(2, "!!not json!!")
        path.write_text("\n".join(lines) + "\n")
        report = validate_feed(path)
        assert not report.passed
        assert any("unparseable" in e for e in report.errors)

    def test_seq_gap_detected_once(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_session(path)
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        records[3]["seq"] += 5  # one gap
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        report = validate_feed(path)
        # resync after the gap: exactly two seq errors (the jump and
        # the fall back), not one per subsequent record
        seq_errors = [e for e in report.errors if "seq" in e]
        assert 1 <= len(seq_errors) <= 2

    def test_unopened_span_close_is_an_error(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        writer = FeedWriter(path)
        writer.record("span_close", span_id="ghost-1", name="x",
                      t0=1.0, t1=2.0)
        writer.close()
        report = validate_feed(path)
        assert any("not open" in e for e in report.errors)

    def test_close_with_open_spans_is_an_error(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        writer = FeedWriter(path)
        writer.record("span_open", span_id="a-1", name="x", t0=1.0)
        writer.close()
        report = validate_feed(path)
        assert any("still open" in e for e in report.errors)

    def test_unclosed_final_session_tolerated(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_session(path, close=False)
        report = validate_feed(path)
        assert report.passed
        assert report.open_tail

    def test_unclosed_earlier_session_is_an_error(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_session(path, close=False)
        write_session(path, close=True)
        report = validate_feed(path)
        assert not report.passed
        assert any("still open" in e for e in report.errors)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        writer = FeedWriter(path)
        writer.close()
        with open(path, "a") as fh:
            fh.write(json.dumps(
                {"seq": 0, "ts": 1.0, "kind": "party"}) + "\n")
        report = validate_feed(path)
        assert any("unknown record kind" in e for e in report.errors)

    def test_missing_file_raises_feed_error(self, tmp_path):
        with pytest.raises(FeedError):
            validate_feed(tmp_path / "nope.jsonl")
        with pytest.raises(FeedError):
            read_feed(tmp_path / "nope.jsonl")


class TestExtraction:
    def test_feed_spans_strips_bookkeeping(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        writer = write_session(path, cells=2)
        records = read_feed(writer.path)
        spans, resources = feed_spans(records)
        assert len(spans) == 3
        for span in spans:
            assert "seq" not in span and "kind" not in span
            assert span["t0"] is not None and span["t1"] is not None

    def test_standalone_resources_keep_feed_ts(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        writer = FeedWriter(path)
        writer.record("resource", pid=1234, rss_kb=4096)
        writer.close()
        _, resources = feed_spans(read_feed(path))
        assert resources[0]["pid"] == 1234
        assert "ts" in resources[0]  # its only timestamp


class StopFollow(Exception):
    """Raised from the injected sleep to break out of the follower."""


class TestFollow:
    """``follow_feed``: the blocking tail behind ``feed show --follow``.

    The injected ``_sleep`` doubles as the test's writer — each poll
    gap is where a live producer would act — and raises
    :class:`StopFollow` when the script runs out, standing in for the
    CLI's Ctrl-C.
    """

    @staticmethod
    def scripted_sleep(*steps):
        """A ``_sleep`` that runs one scripted action per poll gap."""
        script = list(steps)

        def _sleep(_poll):
            if not script:
                raise StopFollow
            script.pop(0)()

        return _sleep

    def test_yields_complete_lines_in_order(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"seq": 0}\n{"seq": 1}\n')
        gen = follow_feed(path, _sleep=self.scripted_sleep())
        assert next(gen) == {"seq": 0}
        assert next(gen) == {"seq": 1}
        with pytest.raises(StopFollow):
            next(gen)

    def test_waits_for_missing_file_then_tails_it(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        gen = follow_feed(
            path,
            _sleep=self.scripted_sleep(
                lambda: path.write_text('{"seq": 0}\n')
            ),
        )
        assert next(gen) == {"seq": 0}

    def test_torn_tail_buffered_until_newline_arrives(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"seq": 0}\n{"seq": ')

        def finish_line():
            with open(path, "a", encoding="utf-8") as fh:
                fh.write('1}\n')

        gen = follow_feed(path, _sleep=self.scripted_sleep(finish_line))
        assert next(gen) == {"seq": 0}
        # The torn half-record must not surface until its newline.
        assert next(gen) == {"seq": 1}

    def test_appended_records_picked_up_after_drain(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"seq": 0}\n')

        def append():
            with open(path, "a", encoding="utf-8") as fh:
                fh.write('{"seq": 1}\n')

        gen = follow_feed(path, _sleep=self.scripted_sleep(append))
        assert next(gen) == {"seq": 0}
        assert next(gen) == {"seq": 1}

    def test_truncation_restarts_from_the_top(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"seq": 0}\n{"seq": 1}\n')
        gen = follow_feed(
            path,
            _sleep=self.scripted_sleep(
                lambda: path.write_text('{"seq": 9}\n')
            ),
        )
        assert next(gen) == {"seq": 0}
        assert next(gen) == {"seq": 1}
        assert next(gen) == {"seq": 9}

    def test_garbage_complete_lines_skipped(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('not json\n{"seq": 0}\n')
        gen = follow_feed(path, _sleep=self.scripted_sleep())
        assert next(gen) == {"seq": 0}
        with pytest.raises(StopFollow):
            next(gen)
