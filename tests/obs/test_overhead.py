"""The observability layer's core guarantees: off by default, free when
off, and bit-identical counters whether tracing is on or off."""

import json

from repro.obs import EventTracer, validate_events
from repro.sim.engine import SimulationEngine
from repro.workloads import load_benchmark


class TestDisabledByDefault:
    def test_tracer_defaults_to_none_class_attrs(self):
        """The hooks guard on class attributes that default to None, so
        an untraced run pays one attribute load per hook site."""
        from repro.coherence.protocol import DirectoryProtocol
        from repro.core.sp_table import SPTable
        from repro.predictors.base import TargetPredictor

        assert TargetPredictor.tracer is None
        assert SPTable.tracer is None
        assert DirectoryProtocol.tracer is None

    def test_engine_defaults_untraced(self):
        workload = load_benchmark("lu", scale=0.02)
        engine = SimulationEngine(workload, predictor="SP")
        assert engine.tracer is None
        engine.run()  # never attaches anything


class TestNonPerturbation:
    def test_counters_bit_identical_off_vs_on(self, traced_run):
        result_on, tracer = traced_run
        assert tracer.emitted > 0
        workload = load_benchmark("lu", scale=0.05)
        result_off = SimulationEngine(
            workload, predictor="SP", collect_epochs=True
        ).run()
        assert result_off.to_dict() == result_on.to_dict()

    def test_interpreted_loop_also_unperturbed(self):
        workload = load_benchmark("radix", scale=0.02)
        payloads = []
        for tracer in (None, EventTracer()):
            engine = SimulationEngine(
                workload, predictor="SP", collect_epochs=True,
                use_compiled=False, tracer=tracer,
            )
            payloads.append(engine.run().to_dict())
        assert payloads[0] == payloads[1]

    def test_real_stream_is_schema_valid_and_json_safe(self, traced_run):
        _, tracer = traced_run
        doc = tracer.to_doc()
        assert validate_events(doc) == []
        json.dumps(doc)

    def test_meta_stamped_by_engine(self, traced_run):
        _, tracer = traced_run
        assert tracer.meta == {
            "workload": "lu", "num_cores": 16,
            "protocol": "directory", "predictor": "SP",
        }


class TestTinyRing:
    def test_wrapped_ring_still_validates(self):
        """A capacity far below the event volume exercises truncation-
        tolerant validation on a real stream, not a synthetic one."""
        workload = load_benchmark("lu", scale=0.05)
        tracer = EventTracer(capacity=256)
        SimulationEngine(
            workload, predictor="SP", collect_epochs=True, tracer=tracer
        ).run()
        assert tracer.dropped > 0
        assert validate_events(tracer.to_doc()) == []


class TestSweepOverheadStage:
    """The telemetry+ledger half of the overhead gate (CLI-level)."""

    def test_stage_reports_and_passes(self, capsys):
        from repro.cli import main

        # A generous ratio keeps this a correctness test (counters
        # identical, stage wired end-to-end), not a timing test; the
        # tight 1.05 budget is enforced by tools/check.sh on real runs.
        assert main([
            "obs", "overhead", "--workload", "lu", "--scale", "0.05",
            "--reps", "1", "--sweep-cells", "2", "--max-ratio", "10",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep_cells"] == 2
        assert payload["sweep_counters_identical"] is True
        assert payload["sweep_overhead_ratio"] > 0
        assert payload["passed"] is True

    def test_stage_skippable(self, capsys):
        from repro.cli import main

        assert main([
            "obs", "overhead", "--workload", "lu", "--scale", "0.05",
            "--reps", "1", "--sweep-cells", "0", "--max-ratio", "10",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "sweep_cells" not in payload


class TestForensicsOverheadStage:
    """The mispredict-attribution half of the overhead gate."""

    def test_stage_reports_and_passes(self, capsys):
        from repro.cli import main

        # Generous ratio: this certifies the wiring (bit-identical
        # counters, doc cross-validates), not the timing budget.
        assert main([
            "obs", "overhead", "--workload", "fft", "--scale", "0.05",
            "--reps", "1", "--sweep-cells", "0", "--max-ratio", "10",
            "--forensics",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["forensics_counters_identical"] is True
        assert payload["forensics_errors"] == []
        assert payload["forensics_mispredicts"] > 0
        assert payload["forensics_overhead_ratio"] > 0
        assert payload["passed"] is True

    def test_stage_off_by_default(self, capsys):
        from repro.cli import main

        assert main([
            "obs", "overhead", "--workload", "fft", "--scale", "0.05",
            "--reps", "1", "--sweep-cells", "0", "--max-ratio", "10",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "forensics_counters_identical" not in payload
