"""The HTML dashboard: data shaping and the self-contained page."""

import json
import re

import pytest

from repro.obs.dashboard import (
    PAPER_AVG_ACCURACY,
    dashboard_data,
    dashboard_html,
    save_dashboard,
)


def make_entry(misses=1000, accuracy=0.7, sweep_s=2.0, sha="abc1234"):
    return {
        "schema": 1,
        "run_id": f"id-{misses}",
        "kind": "sweep",
        "created": "2026-08-06T12:00:00Z",
        "host": {"git_sha": sha},
        "phases": {"sweep_s": sweep_s},
        "metrics": {
            "schema": 1,
            "cells": [{
                "workload": "lu", "protocol": "directory",
                "predictor": "SP", "num_cores": 16,
                "counters": {"misses": misses,
                             "comm_misses": misses // 2},
                "gauges": {"comm_ratio": 0.5, "accuracy": accuracy},
                "comm_timeline": [
                    {"misses": 100, "comm_misses": 40},
                    {"misses": 100, "comm_misses": 60},
                ],
                "comm_matrix": [[0, 5], [3, 0]],
            }],
            "aggregate": {
                "counters": {"misses": misses},
                "gauges": {"accuracy": accuracy, "comm_ratio": 0.5},
            },
        },
    }


@pytest.fixture()
def entries():
    return [
        make_entry(misses=1000, accuracy=0.60, sweep_s=3.0),
        make_entry(misses=1000, accuracy=0.70, sweep_s=2.0),
    ]


class TestDashboardData:
    def test_requires_entries(self):
        with pytest.raises(ValueError, match="at least one"):
            dashboard_data([])

    def test_trajectory_spans_all_entries(self, entries):
        data = dashboard_data(entries)
        assert len(data["entries"]) == 2
        assert [e["accuracy"] for e in data["entries"]] == [0.60, 0.70]
        assert [e["wall_s"] for e in data["entries"]] == [3.0, 2.0]
        assert data["paper_avg_accuracy"] == PAPER_AVG_ACCURACY == 0.77

    def test_latest_sections_present(self, entries):
        latest = dashboard_data(entries)["latest"]
        assert latest["summary"]["cells"] == 1
        assert latest["paper_rows"], "paper comparison rows expected"
        row = latest["paper_rows"][0]
        assert row["workload"] == "lu"
        assert row["comm_ratio"] == 0.5
        assert row["target_comm_ratio"] is not None  # joined from SUITE
        assert latest["timelines"][0]["comm_ratio"] == [0.4, 0.6]
        assert latest["heatmap"] == {"matrix": [[0, 5], [3, 0]],
                                     "cores": 2}


class TestDashboardPage:
    def test_golden_structure(self, entries):
        html = dashboard_html(entries, title="golden title")
        assert html.lstrip().startswith("<!doctype html>")
        assert "golden title" in html
        for element_id in (
            "kpi-row", "wall-chart", "acc-chart", "paper-table-body",
            "timeline-grid", "heatmap-grid", "tooltip",
        ):
            assert f'id="{element_id}"' in html, element_id

    def test_self_contained_no_network_fetches(self, entries):
        html = dashboard_html(entries)
        assert "<script src" not in html
        assert "<link" not in html
        assert "@import" not in html
        assert "https://" not in html
        # the only http: occurrence is the (non-fetched) SVG namespace
        urls = set(re.findall(r"http://[^\"' <)]+", html))
        assert urls <= {"http://www.w3.org/2000/svg"}

    def test_embedded_payload_parses_and_is_escaped(self, entries):
        # a hostile label must not break out of the <script> block
        entries[-1]["label"] = "</script><script>alert(1)</script>"
        html = dashboard_html(entries)
        assert "</script><script>alert(1)" not in html
        match = re.search(r"const DATA = (.*?);\n", html)
        assert match, "embedded data payload expected"
        data = json.loads(match.group(1).replace("<\\/", "</"))
        assert len(data["entries"]) == 2

    def test_dark_mode_and_palette_tokens(self, entries):
        html = dashboard_html(entries)
        assert "prefers-color-scheme: dark" in html
        # the fixed categorical slots: series-1 blue, series-2 orange
        assert "#2a78d6" in html

    def test_save_dashboard(self, entries, tmp_path):
        out = tmp_path / "dash.html"
        save_dashboard(entries, out, title="t")
        assert out.read_text() == dashboard_html(entries, title="t")

    def test_single_entry_still_renders(self):
        html = dashboard_html([make_entry()])
        assert 'id="kpi-row"' in html


def make_feed_records(trace="feedcafe"):
    """A minimal closed session with parent + worker spans."""
    return [
        {"seq": 0, "ts": 1.0, "kind": "feed_open", "schema": 1,
         "pid": 100, "trace": trace, "jobs": 2},
        {"seq": 1, "ts": 1.1, "kind": "span_open", "span_id": "64-1",
         "name": "sweep", "pid": 100, "trace": trace, "t0": 1000.0},
        {"seq": 2, "ts": 1.6, "kind": "span_close", "span_id": "c8-1",
         "parent": "64-1", "name": "cell", "pid": 200, "trace": trace,
         "t0": 1000.1, "t1": 1000.4,
         "attrs": {"cell": "lu/directory/SP"}},
        {"seq": 3, "ts": 1.7, "kind": "span_close", "span_id": "64-1",
         "name": "sweep", "pid": 100, "trace": trace,
         "t0": 1000.0, "t1": 1000.5},
        {"seq": 4, "ts": 1.8, "kind": "feed_close", "records": 4},
    ]


class TestWaterfall:
    def test_rows_from_newest_session(self, entries):
        data = dashboard_data(entries, feed_records=make_feed_records())
        wf = data["waterfall"]
        assert wf["dropped"] == 0
        assert [r["name"] for r in wf["rows"]] == ["sweep", "cell"]
        root, cell = wf["rows"]
        assert root["parent_process"] is True
        assert cell["parent_process"] is False
        assert root["t0"] == 0.0 and root["dur"] == 0.5
        assert cell["t0"] == 0.1
        assert cell["cell"] == "lu/directory/SP"

    def test_no_feed_no_waterfall(self, entries):
        assert dashboard_data(entries)["waterfall"] is None
        assert dashboard_data(
            entries, feed_records=[]
        )["waterfall"] is None

    def test_feed_without_closed_spans_is_none(self, entries):
        records = [r for r in make_feed_records()
                   if r["kind"] != "span_close"]
        data = dashboard_data(entries, feed_records=records)
        assert data["waterfall"] is None

    def test_row_cap_reports_dropped(self, entries):
        from repro.obs import dashboard as dashboard_mod

        records = make_feed_records()[:1]
        for i in range(dashboard_mod._WATERFALL_MAX_ROWS + 10):
            records.append({
                "seq": i + 1, "ts": 1.0 + i * 0.001,
                "kind": "span_close", "span_id": f"c8-{i}",
                "name": "cell", "pid": 200,
                "t0": 1000.0 + i, "t1": 1000.5 + i,
            })
        wf = dashboard_data(entries, feed_records=records)["waterfall"]
        assert len(wf["rows"]) == dashboard_mod._WATERFALL_MAX_ROWS
        assert wf["dropped"] == 10

    def test_page_carries_waterfall_panel(self, entries):
        html = dashboard_html(entries, feed_records=make_feed_records())
        assert 'id="waterfall-chart"' in html


class TestLedgerRoundTrip:
    def test_dashboard_from_real_sweep_entries(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        from repro.obs.ledger import RunLedger
        from repro.runner import RunSpec, SweepRunner

        for scale in (0.05, 0.06):
            runner = SweepRunner(jobs=1, disk=None, progress=False)
            runner.run_many([
                RunSpec(workload="lu", scale=scale, predictor="SP"),
            ])
        entries = RunLedger().entries()
        assert len(entries) == 2
        out = tmp_path / "dash.html"
        save_dashboard(entries, out)
        html = out.read_text()
        assert "lu" in html
        assert "<script src" not in html


class TestForensicsPanel:
    @staticmethod
    def entry_with_taxonomy():
        entry = make_entry()
        entry["metrics"]["cells"][0]["counters"].update({
            "forensics.mispredicts": 120,
            "forensics.cold-sync": 70,
            "forensics.over-prediction": 48,
            "forensics.other": 2,
        })
        return entry

    def test_rows_extracted_from_forensics_counters(self):
        data = dashboard_data([self.entry_with_taxonomy()])
        [row] = data["latest"]["forensics"]
        assert row["workload"] == "lu"
        assert row["mispredicts"] == 120
        assert row["taxonomy"]["cold-sync"] == 70
        assert row["taxonomy"]["over-prediction"] == 48
        assert sum(row["taxonomy"].values()) == 120

    def test_taxonomy_order_matches_module(self):
        from repro.obs.forensics import TAXONOMY

        data = dashboard_data([make_entry()])
        assert data["taxonomy_order"] == list(TAXONOMY)

    def test_runs_without_forensics_show_no_rows(self):
        data = dashboard_data([make_entry()])
        assert data["latest"]["forensics"] == []

    def test_page_carries_forensics_panel(self):
        html = dashboard_html([self.entry_with_taxonomy()])
        assert 'id="forensics"' in html
        assert 'id="forensics-chart"' in html
        assert 'id="forensics-legend"' in html
