"""The regression sentinel: tolerance policy, schema gate, rendering."""

import copy

from repro.obs.regress import (
    DEFAULT_WALL_TOLERANCE,
    compare_runs,
    normalize_run,
)


def payload(misses=1000, comm_ratio=0.4, sweep_s=2.0):
    return {
        "schema": 1,
        "cells": [{
            "workload": "lu", "protocol": "directory", "predictor": "SP",
            "num_cores": 16,
            "counters": {"misses": misses, "noc_bytes": 5 * misses},
            "gauges": {"comm_ratio": comm_ratio},
            "histograms": {"hops": {"1": misses // 2, "2": misses // 2}},
        }],
        "aggregate": {
            "counters": {"misses": misses},
            "gauges": {"comm_ratio": comm_ratio},
        },
        "phases": {"sweep_s": sweep_s},
    }


class TestNormalize:
    def test_sweep_payload(self):
        run = normalize_run(payload())
        assert run["schema"] == 1
        assert len(run["cells"]) == 1
        assert run["aggregate"]["counters"]["misses"] == 1000
        assert run["phases"] == {"sweep_s": 2.0}

    def test_ledger_entry_shape(self):
        entry = {
            "schema": 1, "kind": "sweep",
            "metrics": payload(), "phases": {"sweep_s": 3.0},
        }
        run = normalize_run(entry)
        assert run["schema"] == 1
        assert run["cells"][0]["workload"] == "lu"
        assert run["phases"] == {"sweep_s": 3.0}

    def test_single_cell_shape(self):
        run = normalize_run({
            "schema": 1,
            "counters": {"misses": 7}, "gauges": {"comm_ratio": 0.1},
        })
        assert len(run["cells"]) == 1
        assert run["aggregate"]["counters"]["misses"] == 7


class TestPolicy:
    def test_identical_runs_pass(self):
        report = compare_runs(payload(), payload())
        assert report.passed
        assert report.identical_cells == report.compared_cells == 1
        assert "PASS" in report.render()

    def test_counter_drift_fails_exactly(self):
        drifted = payload(misses=1001)
        report = compare_runs(payload(), drifted)
        assert not report.passed
        names = [row.name for row in report.failures]
        assert "aggregate.counters.misses" in names
        rendered = report.render()
        assert "FAIL" in rendered
        assert "misses" in rendered

    def test_wall_time_within_tolerance_passes(self):
        report = compare_runs(payload(sweep_s=2.0), payload(sweep_s=2.4))
        assert report.passed  # +20% < default 25%

    def test_wall_time_over_tolerance_fails(self):
        report = compare_runs(payload(sweep_s=2.0), payload(sweep_s=3.0))
        assert not report.passed
        assert [r.name for r in report.failures] == ["phases.sweep_s"]

    def test_wall_time_improvement_always_passes(self):
        report = compare_runs(payload(sweep_s=2.0), payload(sweep_s=0.5))
        assert report.passed

    def test_no_wall_skips_phase_metrics(self):
        report = compare_runs(
            payload(sweep_s=2.0), payload(sweep_s=99.0),
            include_wall=False,
        )
        assert report.passed
        assert not any(row.kind == "wall" for row in report.rows)

    def test_custom_tolerance(self):
        a, b = payload(sweep_s=2.0), payload(sweep_s=2.4)
        assert not compare_runs(a, b, wall_tolerance=0.1).passed
        assert compare_runs(a, b, wall_tolerance=0.5).passed
        assert DEFAULT_WALL_TOLERANCE == 0.25

    def test_histogram_drift_summarized_not_dumped(self):
        drifted = copy.deepcopy(payload())
        drifted["cells"][0]["histograms"]["hops"]["2"] += 1
        drifted["aggregate"]["histograms"] = {"hops": {"1": 1}}
        base = copy.deepcopy(payload())
        base["aggregate"]["histograms"] = {"hops": {"1": 2}}
        report = compare_runs(base, drifted)
        assert not report.passed
        rendered = report.render()
        assert "<dist>" in rendered
        assert "{" not in rendered  # bucket dicts never hit the table

    def test_schema_mismatch_refused_one_line(self):
        newer = payload()
        newer["schema"] = 2
        report = compare_runs(payload(), newer)
        assert not report.passed
        assert len(report.errors) == 1
        assert "schema mismatch" in report.errors[0]
        assert report.rows == []  # refused before any comparison

    def test_cell_count_mismatch_is_an_error(self):
        twice = payload()
        twice["cells"] = twice["cells"] + twice["cells"]
        report = compare_runs(payload(), twice)
        assert not report.passed
        assert any("instance(s)" in e for e in report.errors)

    def test_to_dict_round_trips(self):
        report = compare_runs(payload(), payload(misses=2))
        doc = report.to_dict()
        assert doc["passed"] is False
        assert doc["failures"] > 0
        assert any(
            row["name"] == "aggregate.counters.misses"
            for row in doc["rows"]
        )


class TestRealSweepPayloads:
    def test_runner_payload_self_compare(self):
        from repro.runner import RunSpec, SweepRunner

        runner = SweepRunner(jobs=1, disk=None, progress=False,
                             ledger=False)
        runner.run_many([RunSpec(workload="lu", scale=0.05,
                                 predictor="SP")])
        doc = runner.metrics_payload()
        report = compare_runs(doc, copy.deepcopy(doc))
        assert report.passed
        assert report.identical_cells == 1
