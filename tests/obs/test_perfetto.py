"""Perfetto trace_event export."""

import json

from repro.obs import perfetto_trace, save_perfetto
from repro.obs.perfetto import _epoch_name


class TestPerfettoTrace:
    def test_thread_names_cover_all_cores(self, traced_run, traced_doc):
        result, _ = traced_run
        trace = perfetto_trace(traced_doc)
        names = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {m["tid"] for m in names} == set(range(result.num_cores))
        assert names[0]["args"]["name"] == "core 0"

    def test_epoch_slices_pair_begin_end(self, traced_doc):
        trace = perfetto_trace(traced_doc)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        ends = [
            e for e in traced_doc["events"] if e["t"] == "epoch_end"
        ]
        assert len(slices) == len(ends)
        for sl in slices:
            assert sl["dur"] >= 1
            assert sl["cat"] == "epoch"
            assert "misses" in sl["args"]

    def test_accuracy_counter_per_epoch_end(self, traced_doc):
        trace = perfetto_trace(traced_doc)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(counters) == len(slices)
        assert all(0.0 <= c["args"]["accuracy"] <= 1.0 for c in counters)

    def test_mispredictions_become_instants(self, traced_doc):
        trace = perfetto_trace(traced_doc)
        instants = [
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "mispredict"
        ]
        wrong = [
            e for e in traced_doc["events"]
            if e["t"] == "pred" and e.get("correct") is False
        ]
        assert len(instants) == len(wrong)
        if instants:
            assert "predicted" in instants[0]["args"]

    def test_other_data_carries_meta(self, traced_doc):
        trace = perfetto_trace(traced_doc)
        other = trace["otherData"]
        assert other["workload"] == "lu"
        assert other["predictor"] == "SP"
        assert other["dropped_events"] == 0
        assert trace["displayTimeUnit"] == "ns"

    def test_orphaned_end_skipped(self):
        doc = {
            "schema": 1, "meta": {}, "dropped": 3,
            "events": [
                {"t": "epoch_end", "core": 0, "ts": 10, "epoch": 3,
                 "misses": 1, "comm": 0, "preds": 0, "correct": 0},
            ],
        }
        trace = perfetto_trace(doc)
        assert [e for e in trace["traceEvents"] if e["ph"] == "X"] == []

    def test_save_round_trips_as_json(self, traced_doc, tmp_path):
        path = tmp_path / "trace.json"
        trace = save_perfetto(traced_doc, path)
        assert json.loads(path.read_text()) == trace


class TestEpochName:
    def test_lock_key_hex(self):
        assert _epoch_name(
            {"kind": "lock", "key": ["lock", 0x1000]}
        ) == "lock lock:0x1000"

    def test_pre_sync_interval(self):
        assert _epoch_name({"kind": "start", "key": None}) == "start"
