"""Perfetto trace_event export."""

import json
from pathlib import Path

from repro.obs import perfetto_spans, perfetto_trace, save_perfetto
from repro.obs.perfetto import _epoch_name

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "data" / "perfetto"

#: Fixed span records (one parent process, one worker) for the golden
#: export: every timestamp is pinned so the output is byte-stable.
SWEEP_SPANS = [
    {"schema": 1, "span_id": "64-1", "parent": None, "trace": "feedcafe",
     "name": "sweep", "pid": 100, "t0": 1000.0, "t1": 1000.5,
     "attrs": {"cells": 1}},
    {"schema": 1, "span_id": "c8-1", "parent": "64-1", "trace": "feedcafe",
     "name": "cell", "pid": 200, "t0": 1000.1, "t1": 1000.4,
     "attrs": {"cell": "lu/directory/SP"},
     "resource": {"pid": 200, "rss_kb": 51200}},
    {"schema": 1, "span_id": "c8-2", "parent": "c8-1", "trace": "feedcafe",
     "name": "run", "pid": 200, "t0": 1000.15, "t1": 1000.35},
]

SWEEP_RESOURCES = [
    {"pid": 100, "rss_kb": 40960, "ts": 1000.25},
]

#: A minimal simulator event doc: one core, one closed epoch holding
#: one forensics-attributed mispredict.
TINY_DOC = {
    "schema": 1,
    "meta": {"workload": "lu", "protocol": "directory", "predictor": "SP"},
    "dropped": 0,
    "capacity": 64,
    "events": [
        {"t": "epoch_begin", "core": 0, "ts": 10, "epoch": 1,
         "kind": "barrier", "key": ["barrier", 4096]},
        {"t": "pred", "core": 0, "ts": 42, "epoch": 1, "miss": 2,
         "kind": "read", "predicted": [1], "actual": [2],
         "correct": False, "source": "table", "tax": "stale-signature"},
        {"t": "epoch_end", "core": 0, "ts": 90, "epoch": 1,
         "misses": 4, "comm": 2, "preds": 2, "correct": 1},
    ],
}


class TestPerfettoTrace:
    def test_thread_names_cover_all_cores(self, traced_run, traced_doc):
        result, _ = traced_run
        trace = perfetto_trace(traced_doc)
        names = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {m["tid"] for m in names} == set(range(result.num_cores))
        assert names[0]["args"]["name"] == "core 0"

    def test_epoch_slices_pair_begin_end(self, traced_doc):
        trace = perfetto_trace(traced_doc)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        ends = [
            e for e in traced_doc["events"] if e["t"] == "epoch_end"
        ]
        assert len(slices) == len(ends)
        for sl in slices:
            assert sl["dur"] >= 1
            assert sl["cat"] == "epoch"
            assert "misses" in sl["args"]

    def test_accuracy_counter_per_epoch_end(self, traced_doc):
        trace = perfetto_trace(traced_doc)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(counters) == len(slices)
        assert all(0.0 <= c["args"]["accuracy"] <= 1.0 for c in counters)

    def test_mispredictions_become_instants(self, traced_doc):
        trace = perfetto_trace(traced_doc)
        instants = [
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "mispredict"
        ]
        wrong = [
            e for e in traced_doc["events"]
            if e["t"] == "pred" and e.get("correct") is False
        ]
        assert len(instants) == len(wrong)
        if instants:
            assert "predicted" in instants[0]["args"]

    def test_mispredict_instants_carry_tax_when_present(self):
        trace = perfetto_trace(TINY_DOC)
        [instant] = [
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "mispredict"
        ]
        assert instant["args"]["predicted"] == [1]
        assert instant["args"]["actual"] == [2]
        assert instant["args"]["tax"] == "stale-signature"

    def test_attributed_over_prediction_becomes_instant(self):
        # ``correct: null`` preds are invisible normally, but once a
        # forensics run classifies one it is a mispredict and exports.
        doc = json.loads(json.dumps(TINY_DOC))
        over = dict(
            doc["events"][1], ts=50, correct=None, actual=[],
            tax="over-prediction",
        )
        doc["events"].insert(2, over)
        trace = perfetto_trace(doc)
        instants = [
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "mispredict"
        ]
        assert len(instants) == 2
        assert instants[1]["args"]["tax"] == "over-prediction"

    def test_mispredict_instants_omit_tax_without_forensics(self):
        # Without a forensics collector no pred event carries a
        # taxonomy class, and the exporter must not invent the key.
        doc = json.loads(json.dumps(TINY_DOC))
        for ev in doc["events"]:
            ev.pop("tax", None)
        trace = perfetto_trace(doc)
        [instant] = [
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "mispredict"
        ]
        assert "tax" not in instant["args"]

    def test_other_data_carries_meta(self, traced_doc):
        trace = perfetto_trace(traced_doc)
        other = trace["otherData"]
        assert other["workload"] == "lu"
        assert other["predictor"] == "SP"
        assert other["dropped_events"] == 0
        assert trace["displayTimeUnit"] == "ns"

    def test_orphaned_end_skipped(self):
        doc = {
            "schema": 1, "meta": {}, "dropped": 3,
            "events": [
                {"t": "epoch_end", "core": 0, "ts": 10, "epoch": 3,
                 "misses": 1, "comm": 0, "preds": 0, "correct": 0},
            ],
        }
        trace = perfetto_trace(doc)
        assert [e for e in trace["traceEvents"] if e["ph"] == "X"] == []

    def test_save_round_trips_as_json(self, traced_doc, tmp_path):
        path = tmp_path / "trace.json"
        trace = save_perfetto(traced_doc, path)
        assert json.loads(path.read_text()) == trace


class TestSweepSpanTracks:
    def test_processes_get_named_tracks(self):
        events = perfetto_spans(SWEEP_SPANS, SWEEP_RESOURCES)
        meta = [e for e in events if e["ph"] == "M"]
        names = {
            e["pid"]: e["args"]["name"] for e in meta
            if e["name"] == "process_name"
        }
        assert names == {
            100: "sweep parent (pid 100)",
            200: "sweep worker (pid 200)",
        }

    def test_spans_become_rebased_slices(self):
        events = perfetto_spans(SWEEP_SPANS)
        slices = {e["name"]: e for e in events if e["ph"] == "X"}
        assert slices["sweep"]["ts"] == 0.0  # earliest span is the base
        assert slices["sweep"]["dur"] == 500000.0  # 0.5 s in µs
        assert slices["cell"]["ts"] == 100000.0
        assert slices["run"]["args"]["parent"] == "c8-1"
        assert slices["cell"]["args"]["cell"] == "lu/directory/SP"

    def test_resources_become_rss_counters(self):
        events = perfetto_spans(SWEEP_SPANS, SWEEP_RESOURCES)
        counters = [e for e in events if e["ph"] == "C"]
        by_pid = {e["pid"]: e["args"]["rss_kb"] for e in counters}
        assert by_pid == {200: 51200, 100: 40960}

    def test_open_spans_are_skipped(self):
        open_span = dict(SWEEP_SPANS[0], t1=None)
        assert perfetto_spans([open_span]) == []
        assert perfetto_spans([]) == []

    def test_merged_trace_keeps_both_track_types(self):
        trace = perfetto_trace(
            TINY_DOC, spans=SWEEP_SPANS, resources=SWEEP_RESOURCES
        )
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {0, 100, 200}  # simulator + parent + worker
        cats = {e.get("cat") for e in trace["traceEvents"] if "cat" in e}
        assert {"sweep", "epoch"} <= cats

    def test_spans_only_export_needs_no_doc(self):
        trace = perfetto_trace(None, spans=SWEEP_SPANS)
        assert all(
            e["pid"] in (100, 200) for e in trace["traceEvents"]
        )
        assert trace["otherData"]["schema"] is None

    def test_golden_merged_export(self, tmp_path):
        """The pinned end-to-end export: simulator tracks + sweep spans.

        Regenerate after an intentional format change with::

            PYTHONPATH=src python tests/obs/test_perfetto.py
        """
        golden = GOLDEN_DIR / "merged_trace.json"
        trace = perfetto_trace(
            TINY_DOC, spans=SWEEP_SPANS, resources=SWEEP_RESOURCES
        )
        assert trace == json.loads(golden.read_text())

    def test_save_merged_round_trips(self, tmp_path):
        path = tmp_path / "merged.json"
        trace = save_perfetto(
            TINY_DOC, path, spans=SWEEP_SPANS, resources=SWEEP_RESOURCES
        )
        assert json.loads(path.read_text()) == trace


class TestEpochName:
    def test_lock_key_hex(self):
        assert _epoch_name(
            {"kind": "lock", "key": ["lock", 0x1000]}
        ) == "lock lock:0x1000"

    def test_pre_sync_interval(self):
        assert _epoch_name({"kind": "start", "key": None}) == "start"


if __name__ == "__main__":
    # Regenerate the golden export after an intentional format change.
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    out = GOLDEN_DIR / "merged_trace.json"
    doc = perfetto_trace(
        TINY_DOC, spans=SWEEP_SPANS, resources=SWEEP_RESOURCES
    )
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
