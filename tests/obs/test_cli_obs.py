"""CLI surface of the ledger, regression diff, dashboard, and reports."""

import json

import pytest

from repro.cli import main
from repro.obs.feed import FeedWriter
from repro.obs.ledger import RunLedger
from repro.obs.spans import SpanTracer


def seed_ledger(misses=1000, sweep_s=2.0, label="probe"):
    """One synthetic sweep entry in the (test-isolated) default ledger."""
    return RunLedger().record(
        "sweep",
        metrics={
            "schema": 1,
            "cells": [{
                "workload": "lu", "protocol": "directory",
                "predictor": "SP", "num_cores": 16,
                "counters": {"misses": misses, "pred_attempted": 10},
                "gauges": {"comm_ratio": 0.4, "accuracy": 0.7},
            }],
            "aggregate": {
                "counters": {"misses": misses},
                "gauges": {"comm_ratio": 0.4},
            },
        },
        phases={"sweep_s": sweep_s},
        label=label,
    )


class TestLedgerList:
    def test_lists_entries(self, capsys):
        run_id = seed_ledger(label="probe-a")
        assert main(["obs", "ledger", "list"]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "probe-a" in out

    def test_kind_filter_and_json(self, capsys):
        seed_ledger()
        RunLedger().record("bench", extra={"sweep_s": 1.0})
        assert main(["obs", "ledger", "list", "--kind", "bench",
                     "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["kind"] for e in entries] == ["bench"]

    def test_empty_ledger_is_not_an_error(self, capsys):
        assert main(["obs", "ledger", "list"]) == 0
        assert "ledger empty" in capsys.readouterr().out

    def test_disabled_ledger_exits_one(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert main(["obs", "ledger", "list"]) == 1
        assert "REPRO_LEDGER=0" in capsys.readouterr().err


class TestLedgerShow:
    def test_show_json(self, capsys):
        run_id = seed_ledger()
        assert main(["obs", "ledger", "show", run_id[:8]]) == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["run_id"] == run_id

    def test_show_summary_table(self, capsys):
        run_id = seed_ledger()
        assert main(["obs", "ledger", "show", run_id, "--summary"]) == 0
        out = capsys.readouterr().out
        assert "metrics payload: 1 cell(s)" in out
        assert "lu" in out

    def test_missing_entry_one_line_error(self, capsys):
        seed_ledger()
        assert main(["obs", "ledger", "show", "feedfeedfeed"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no ledger entry" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_corrupt_store_still_resolves_good_entries(self, capsys):
        run_id = seed_ledger()
        ledger = RunLedger()
        with open(ledger.segments()[0], "a") as fh:
            fh.write('{"torn":\n')
        assert main(["obs", "ledger", "show", run_id]) == 0

    def test_fully_corrupt_store_one_line_error(self, capsys):
        run_id = seed_ledger()
        ledger = RunLedger()
        segment = ledger.segments()[0]
        segment.write_text('{"all torn\n')
        assert main(["obs", "ledger", "show", run_id]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestLedgerGcExport:
    def test_gc(self, capsys):
        for i in range(5):
            seed_ledger(misses=i)
        assert main(["obs", "ledger", "gc", "--keep", "2"]) == 0
        assert "removed 3, kept 2" in capsys.readouterr().out
        assert len(RunLedger().entries()) == 2

    def test_export(self, capsys, tmp_path):
        seed_ledger()
        out = tmp_path / "all.json"
        assert main(["obs", "ledger", "export", "-o", str(out)]) == 0
        assert len(json.loads(out.read_text())) == 1


class TestObsDiff:
    def test_identical_runs_exit_zero(self, capsys):
        a = seed_ledger(misses=1000)
        b = seed_ledger(misses=1000, label="again")
        assert main(["obs", "diff", a[:8], b[:8], "--no-wall"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_counter_drift_exits_one_with_table(self, capsys):
        a = seed_ledger(misses=1000)
        b = seed_ledger(misses=1001)
        assert main(["obs", "diff", a, b, "--no-wall"]) == 1
        out = capsys.readouterr().out
        assert "aggregate.counters.misses" in out
        assert "FAIL" in out

    def test_wall_tolerance_flag(self, capsys):
        a = seed_ledger(misses=1, sweep_s=2.0)
        b = seed_ledger(misses=1, sweep_s=2.4, label="slower")
        assert main(["obs", "diff", a, b,
                     "--wall-tolerance", "0.1"]) == 1
        capsys.readouterr()
        assert main(["obs", "diff", a, b,
                     "--wall-tolerance", "0.5"]) == 0

    def test_file_paths_accepted(self, capsys, tmp_path):
        doc = {
            "schema": 1,
            "cells": [],
            "aggregate": {"counters": {"misses": 5}},
        }
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        path_a.write_text(json.dumps(doc))
        doc["aggregate"]["counters"]["misses"] = 6
        path_b.write_text(json.dumps(doc))
        assert main(["obs", "diff", str(path_a), str(path_b)]) == 1

    def test_json_report(self, capsys):
        a = seed_ledger(misses=1)
        b = seed_ledger(misses=2)
        assert main(["obs", "diff", a, b, "--no-wall", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is False

    def test_unknown_run_one_line_error(self, capsys):
        seed_ledger()
        assert main(["obs", "diff", "feedfeed", "feedfeed"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestObsDashboardCommand:
    def test_renders_from_ledger(self, capsys, tmp_path):
        seed_ledger(misses=1000)
        seed_ledger(misses=1001)
        out = tmp_path / "dash.html"
        assert main(["obs", "dashboard", "--out", str(out)]) == 0
        assert "2 runs" in capsys.readouterr().out
        html = out.read_text()
        assert html.lstrip().startswith("<!doctype html>")
        assert "<script src" not in html

    def test_empty_ledger_exits_one(self, capsys, tmp_path):
        out = tmp_path / "dash.html"
        assert main(["obs", "dashboard", "--out", str(out)]) == 1
        assert "error:" in capsys.readouterr().err
        assert not out.exists()


class TestObsReportOnMetrics:
    def test_report_from_ledger_run_id(self, capsys):
        run_id = seed_ledger()
        assert main(["obs", "report", run_id[:8]]) == 0
        out = capsys.readouterr().out
        assert "metrics payload: 1 cell(s)" in out

    def test_report_from_metrics_file(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({
            "schema": 1,
            "cells": [{
                "workload": "fft", "protocol": "broadcast",
                "predictor": "none",
                "counters": {"misses": 3},
                "gauges": {"comm_ratio": 0.1},
            }],
            "aggregate": {"gauges": {"comm_ratio": 0.1}},
        }))
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fft" in out and "broadcast" in out

    def test_export_refuses_metrics_payload(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"schema": 1, "cells": []}))
        assert main(["obs", "export", str(path),
                     "-o", str(tmp_path / "out.json")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not a repro event stream" in err
        assert "Traceback" not in err


def write_feed(path, close=True, cells=2):
    """A well-formed feed session with a root span + cell spans."""
    writer = FeedWriter(path, trace="feedcafe", meta={"jobs": 2})
    tracer = SpanTracer(trace_id="feedcafe", sink=writer.span_sink)
    root = tracer.start("sweep")
    for i in range(cells):
        digest = f"d{i:02d}" * 6
        writer.record("cell_start", digest=digest, label=f"cell-{i}")
        with tracer.span("cell", parent=root,
                         attrs={"cell": f"cell-{i}"}):
            pass
        writer.record("cell_finish", digest=digest, wall_s=0.1)
    tracer.finish(root)
    if close:
        writer.close()
    else:
        writer._fh.close()  # simulate a killed writer: no feed_close


class TestFeedValidateCommand:
    def test_clean_feed_passes(self, capsys, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_feed(path)
        assert main(["obs", "feed", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 cells" in out
        assert "feed validation: PASS" in out

    def test_strict_tail_fails_open_session(self, capsys, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_feed(path, close=False)
        assert main(["obs", "feed", "validate", str(path)]) == 0
        assert "final session still open" in capsys.readouterr().out
        assert main(["obs", "feed", "validate", str(path),
                     "--strict-tail"]) == 1
        assert "feed validation: FAIL" in capsys.readouterr().out

    def test_json_report(self, capsys, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_feed(path, cells=3)
        assert main(["obs", "feed", "validate", str(path),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is True
        assert doc["cells"] == 3
        assert doc["errors"] == []

    def test_corrupt_feed_fails_with_errors(self, capsys, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_feed(path)
        lines = path.read_text().splitlines()
        del lines[2]  # a seq gap mid-session
        path.write_text("\n".join(lines) + "\n")
        assert main(["obs", "feed", "validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "error:" in out
        assert "feed validation: FAIL" in out

    def test_missing_feed_one_line_error(self, capsys, tmp_path):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "feed", "validate", str(missing)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestFeedShowCommand:
    def test_renders_sessions(self, capsys, tmp_path):
        path = tmp_path / "feed.jsonl"
        write_feed(path)
        assert main(["obs", "feed", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "feedcafe" in out
        assert "cells finished: 2" in out

    def test_missing_feed_errors(self, capsys, tmp_path):
        assert main(["obs", "feed", "show",
                     str(tmp_path / "nope.jsonl")]) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestExportFeedSpans:
    def test_spans_only_export(self, capsys, tmp_path):
        feed = tmp_path / "feed.jsonl"
        write_feed(feed)
        out = tmp_path / "trace.json"
        assert main(["obs", "export", "--feed", str(feed),
                     "-o", str(out)]) == 0
        msg = capsys.readouterr().out
        assert "3 sweep spans" in msg
        assert "simulator events" not in msg
        trace = json.loads(out.read_text())
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert "sweep" in cats

    def test_no_input_at_all_errors(self, capsys, tmp_path):
        assert main(["obs", "export",
                     "-o", str(tmp_path / "trace.json")]) == 1
        err = capsys.readouterr().err
        assert "nothing to export" in err

    def test_feed_without_closed_spans_errors(self, capsys, tmp_path):
        feed = tmp_path / "feed.jsonl"
        writer = FeedWriter(feed, trace="cafe")
        writer.record("metric", value=1)
        writer.close()
        assert main(["obs", "export", "--feed", str(feed),
                     "-o", str(tmp_path / "trace.json")]) == 1
        assert "no closed spans" in capsys.readouterr().err


class TestLedgerGcCriteria:
    def test_dry_run_changes_nothing(self, capsys):
        for i in range(5):
            seed_ledger(misses=i)
        assert main(["obs", "ledger", "gc", "--keep", "2",
                     "--dry-run"]) == 0
        assert "would remove 3, keeping 2" in capsys.readouterr().out
        assert len(RunLedger().entries()) == 5

    def test_older_than_keeps_fresh_entries(self, capsys):
        for i in range(3):
            seed_ledger(misses=i)
        assert main(["obs", "ledger", "gc",
                     "--older-than", "30"]) == 0
        assert "removed 0, kept 3" in capsys.readouterr().out

    def test_max_size_drops_oldest(self, capsys):
        for i in range(4):
            seed_ledger(misses=i)
        assert main(["obs", "ledger", "gc", "--max-size", "0"]) == 0
        assert "kept 0" in capsys.readouterr().out
        assert RunLedger().entries() == []

    def test_negative_criteria_one_line_error(self, capsys):
        seed_ledger()
        assert main(["obs", "ledger", "gc",
                     "--older-than", "-1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestDashboardFeedFlag:
    def test_feed_adds_waterfall(self, capsys, tmp_path):
        seed_ledger()
        feed = tmp_path / "feed.jsonl"
        write_feed(feed)
        out = tmp_path / "dash.html"
        assert main(["obs", "dashboard", "--feed", str(feed),
                     "--out", str(out)]) == 0
        assert "+ sweep waterfall" in capsys.readouterr().out
        assert 'id="waterfall-chart"' in out.read_text()

    def test_bad_feed_errors_before_writing(self, capsys, tmp_path):
        seed_ledger()
        out = tmp_path / "dash.html"
        assert main(["obs", "dashboard",
                     "--feed", str(tmp_path / "nope.jsonl"),
                     "--out", str(out)]) == 1
        assert capsys.readouterr().err.startswith("error:")
        assert not out.exists()


class TestSimulateRecordsLedger:
    def test_simulate_writes_entry(self, capsys):
        assert main(["simulate", "lu", "--scale", "0.05"]) == 0
        entries = RunLedger().entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["kind"] == "simulate"
        assert entry["label"] == "lu/directory/none"
        assert entry["phases"]["run_s"] >= 0
        assert entry["metrics"]["counters"]["misses"] > 0

    def test_simulate_honors_disable(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert main(["simulate", "lu", "--scale", "0.05"]) == 0
        monkeypatch.setenv("REPRO_LEDGER", "1")
        assert RunLedger().entries() == []


class TestObsWhyCommand:
    def test_single_workload_detail_with_json_artifact(
        self, capsys, tmp_path
    ):
        artifact = tmp_path / "forensics-report.json"
        assert main(["obs", "why", "x264", "--scale", "0.05",
                     "--json", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "x264" in out
        assert "obs-why: PASS" in out
        report = json.loads(artifact.read_text())
        assert report["passed"] is True
        assert report["errors"] == []
        [doc] = report["workloads"]
        assert doc["workload"] == "x264"
        assert sum(doc["taxonomy"].values()) == doc["mispredicts"]

    def test_taxonomy_drill_down_filters(self, capsys):
        assert main(["obs", "why", "x264", "--scale", "0.05",
                     "--taxonomy", "cold-sync", "--examples", "1"]) == 0
        assert "cold-sync" in capsys.readouterr().out

    def test_unattainable_other_budget_fails(self, capsys):
        # A negative budget no run can meet forces the gate red.
        assert main(["obs", "why", "x264", "--scale", "0.05",
                     "--max-other", "-1"]) == 1
        captured = capsys.readouterr()
        assert "obs-why: FAIL" in captured.out
        assert "other-rate" in captured.err

    def test_record_lands_taxonomy_in_ledger(self, capsys):
        assert main(["obs", "why", "x264", "--scale", "0.05",
                     "--record"]) == 0
        capsys.readouterr()
        assert main(["obs", "ledger", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert any(e.get("label") == "obs-why" for e in entries)
