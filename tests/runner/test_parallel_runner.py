"""Tests for the parallel sweep runner and the persistent result cache.

The two load-bearing guarantees:

* determinism — the multiprocessing path and the serial in-process
  fallback produce identical ``SimulationResult`` payloads;
* zero re-simulation — a repeated prefetch (same process or a fresh
  cache over the same disk directory) performs no engine runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import RunCache
from repro.runner import DiskCache, RunSpec, SweepRunner
from repro.sim.machine import MachineConfig

SCALE = 0.05

#: A small but representative grid: two workloads, a predictor and a
#: baseline, one epoch-collecting run.
GRID = [
    {"name": "x264"},
    {"name": "x264", "predictor": "SP"},
    {"name": "lu", "predictor": "SP"},
    {"name": "lu", "collect_epochs": True},
]


def make_cache(tmp_path, jobs, subdir="runs") -> RunCache:
    return RunCache(
        machine=MachineConfig(),
        scale=SCALE,
        jobs=jobs,
        disk_cache=DiskCache(tmp_path / subdir),
    )


class TestDeterminism:
    def test_parallel_matches_serial(self, tmp_path):
        serial = RunCache(scale=SCALE, jobs=1, disk_cache=False)
        parallel = make_cache(tmp_path, jobs=2)
        parallel.prefetch(GRID)
        assert parallel.simulations == len(GRID)
        for config in GRID:
            a = serial.get(**config)
            b = parallel.get(**config)
            assert a == b, f"serial and parallel results differ for {config}"

    def test_parallel_results_carry_epoch_records(self, tmp_path):
        parallel = make_cache(tmp_path, jobs=2)
        parallel.prefetch(GRID)
        collected = parallel.get("lu", collect_epochs=True)
        assert collected.epoch_records
        assert collected.pc_volume
        # tuple keys survived the worker round-trip
        core, pc = next(iter(collected.pc_volume))
        assert isinstance(core, int) and isinstance(pc, int)


class TestZeroResimulation:
    def test_repeated_prefetch_simulates_nothing(self, tmp_path):
        cache = make_cache(tmp_path, jobs=1)
        first = cache.prefetch(GRID)
        assert first == len(GRID)
        second = cache.prefetch(GRID)
        assert second == 0

    def test_warm_disk_cache_crosses_processes(self, tmp_path):
        cold = make_cache(tmp_path, jobs=1)
        cold.prefetch(GRID)
        # A fresh RunCache over the same directory models a new harness
        # invocation: everything must come off disk.
        warm = make_cache(tmp_path, jobs=1)
        assert warm.prefetch(GRID) == 0
        assert warm.simulations == 0
        for config in GRID:
            assert warm.get(**config) == cold.get(**config)
        assert warm.simulations == 0

    def test_get_after_prefetch_is_memo_hit(self, tmp_path):
        cache = make_cache(tmp_path, jobs=1)
        cache.prefetch(GRID)
        before = cache.simulations
        a = cache.get("x264", predictor="SP")
        b = cache.get("x264", predictor="SP")
        assert a is b
        assert cache.simulations == before

    def test_collecting_disk_entry_serves_plain_request(self, tmp_path):
        cold = make_cache(tmp_path, jobs=1)
        cold.get("lu", collect_epochs=True)
        warm = make_cache(tmp_path, jobs=1)
        result = warm.get("lu", collect_epochs=False)
        assert warm.simulations == 0
        assert result.epoch_records


class TestRunSpecDigest:
    def test_digest_distinguishes_configurations(self):
        base = RunSpec(workload="lu", scale=0.1)
        assert base.digest() == RunSpec(workload="lu", scale=0.1).digest()
        for other in (
            RunSpec(workload="x264", scale=0.1),
            RunSpec(workload="lu", scale=0.2),
            RunSpec(workload="lu", scale=0.1, protocol="broadcast"),
            RunSpec(workload="lu", scale=0.1, predictor="SP"),
            RunSpec(workload="lu", scale=0.1, collect_epochs=True),
            RunSpec(workload="lu", scale=0.1, max_entries=64),
            RunSpec(workload="lu", scale=0.1, seed=7),
            RunSpec(workload="lu", scale=0.1, machine=MachineConfig.small()),
        ):
            assert other.digest() != base.digest()

    def test_collecting_variant(self):
        spec = RunSpec(workload="lu", scale=0.1)
        assert spec.collecting().collect_epochs
        assert spec.collecting().digest() != spec.digest()
        already = RunSpec(workload="lu", scale=0.1, collect_epochs=True)
        assert already.collecting() is already


class TestDiskCache:
    def test_corrupt_entry_is_discarded(self, tmp_path):
        disk = DiskCache(tmp_path / "runs")
        disk.store("abc", {"x": 1})
        assert disk.load("abc") == {"x": 1}
        disk.path("abc").write_text("{not json")
        assert disk.load("abc") is None
        assert not disk.path("abc").exists()

    def test_clear_and_size(self, tmp_path):
        disk = DiskCache(tmp_path / "runs")
        assert disk.size() == 0
        disk.store("a", {})
        disk.store("b", {})
        assert disk.size() == 2
        assert disk.clear() == 2
        assert disk.size() == 0

    def test_missing_entry(self, tmp_path):
        disk = DiskCache(tmp_path / "runs")
        assert disk.load("nope") is None
        assert disk.misses == 1


class TestSweepRunner:
    def test_run_many_deduplicates(self, tmp_path):
        runner = SweepRunner(jobs=1, disk=DiskCache(tmp_path / "runs"))
        spec = RunSpec(workload="x264", scale=SCALE)
        results = runner.run_many([spec, spec, spec])
        assert runner.simulations == 1
        assert results[0] is results[1] is results[2]

    def test_fetch_never_simulates(self, tmp_path):
        runner = SweepRunner(jobs=1, disk=DiskCache(tmp_path / "runs"))
        assert runner.fetch(RunSpec(workload="x264", scale=SCALE)) is None
        assert runner.simulations == 0


class TestJobsResolution:
    def test_explicit_wins(self, monkeypatch):
        from repro.runner import resolve_jobs

        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(5) == 5
        assert resolve_jobs() == 3
        monkeypatch.delenv("REPRO_JOBS")
        import os

        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_floor_of_one_warns(self):
        from repro.runner import resolve_jobs

        with pytest.warns(RuntimeWarning, match=r"jobs=0 is not a valid"):
            assert resolve_jobs(0) == 1
        with pytest.warns(RuntimeWarning, match=r"jobs=-4 is not a valid"):
            assert resolve_jobs(-4) == 1

    def test_env_floor_of_one_warns(self, monkeypatch):
        from repro.runner import resolve_jobs

        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.warns(
            RuntimeWarning, match=r"REPRO_JOBS=0 is not a valid"
        ):
            assert resolve_jobs() == 1

    def test_valid_counts_do_not_warn(self, monkeypatch, recwarn):
        from repro.runner import resolve_jobs

        monkeypatch.setenv("REPRO_JOBS", "2")
        assert resolve_jobs() == 2
        assert resolve_jobs(1) == 1
        assert not [
            w for w in recwarn if issubclass(w.category, RuntimeWarning)
        ]

    def test_garbage_env_names_the_variable(self, monkeypatch):
        from repro.runner import resolve_jobs

        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs()


class TestEnginePredictorWiring:
    """Satellite: the engine accepts predictor kinds directly."""

    def test_kind_string_builds_and_names(self, stable_workload, small_machine):
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(
            stable_workload, machine=small_machine, predictor="SP"
        )
        assert engine.predictor is not None
        assert engine.predictor.name == "SP"
        assert engine.result.predictor == "SP"

    def test_oracle_kind_gets_directory(self, stable_workload, small_machine):
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(
            stable_workload, machine=small_machine, predictor="ORACLE"
        )
        assert engine.result.predictor == "ORACLE"

    def test_none_kind(self, stable_workload, small_machine):
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(
            stable_workload, machine=small_machine, predictor="none"
        )
        assert engine.predictor is None
        assert engine.result.predictor == "none"

    def test_entries_require_kind_name(self, stable_workload, small_machine):
        from repro.sim.engine import SimulationEngine

        with pytest.raises(ValueError):
            SimulationEngine(
                stable_workload, machine=small_machine, predictor_entries=8
            )

    def test_fast_path_preserves_timing(self, stable_workload, small_machine):
        from repro.sim.engine import simulate

        full = simulate(stable_workload, machine=small_machine, predictor="SP")
        fast = simulate(
            stable_workload, machine=small_machine, predictor="SP",
            ideal_metric=False,
        )
        assert fast.cycles == full.cycles
        assert fast.misses == full.misses
        assert fast.comm_misses == full.comm_misses
        assert fast.ideal_correct == 0
        assert fast.dynamic_epochs == 0
