"""Cross-process span propagation through the worker pool.

The distributed-tracing guarantees, under both multiprocessing start
methods:

* worker spans carry the parent's trace id and parent under the
  sweep-root span, with their own OS pids;
* the feed written during a ``--jobs 2`` sweep passes *strict*
  validation — every span closed, every started cell finished (the
  deterministic heartbeat drain on pool shutdown);
* instrumentation changes no simulation counter: results are
  bit-identical to a spans-off serial sweep.
"""

from __future__ import annotations

import os

import pytest

from repro.obs import RunLedger, read_feed, validate_feed
from repro.obs.feed import feed_spans, last_session
from repro.runner import RunSpec, SweepRunner

SCALE = 0.05

SPECS = [
    RunSpec(workload="lu", scale=SCALE, predictor="SP"),
    RunSpec(workload="x264", scale=SCALE),
    RunSpec(workload="lu", scale=SCALE, protocol="broadcast"),
]


def run_traced_sweep(tmp_path, monkeypatch, start_method):
    monkeypatch.setenv("REPRO_MP_START", start_method)
    feed_path = tmp_path / f"feed-{start_method}.jsonl"
    runner = SweepRunner(
        jobs=2, disk=None, progress=False,
        feed=feed_path, spans=True,
    )
    results = runner.run_many(SPECS)
    return runner, feed_path, results


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
class TestSpanPropagation:
    def test_pool_sweep_feed_validates_strictly(
        self, tmp_path, monkeypatch, start_method
    ):
        runner, feed_path, results = run_traced_sweep(
            tmp_path, monkeypatch, start_method
        )
        report = validate_feed(feed_path)
        assert report.errors == []
        assert report.passed
        # the deterministic drain: every dispatched cell finished
        assert report.cells == len(SPECS)
        assert not report.truncated and not report.open_tail

        records = last_session(read_feed(feed_path))
        spans, _resources = feed_spans(records)
        parent_pid = os.getpid()
        trace = runner.last_trace_id
        assert trace is not None
        assert all(s["trace"] == trace for s in spans)

        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        root = by_name["sweep"][0]
        assert root["pid"] == parent_pid

        worker_pids = {s["pid"] for s in by_name["cell"]}
        assert parent_pid not in worker_pids
        assert len(by_name["cell"]) == len(SPECS)
        # every worker cell span hangs off the parent's root span
        assert all(
            s["parent"] == root["span_id"] for s in by_name["cell"]
        )
        # the phases inside each cell stayed in the worker process
        for name in ("load", "run", "flush"):
            assert {s["pid"] for s in by_name[name]} <= worker_pids

    def test_counters_identical_to_untraced_serial(
        self, tmp_path, monkeypatch, start_method
    ):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        bare = SweepRunner(jobs=1, disk=None, progress=False, spans=False)
        expected = [r.to_dict() for r in bare.run_many(SPECS)]
        monkeypatch.setenv("REPRO_LEDGER", "1")

        _, _, results = run_traced_sweep(
            tmp_path, monkeypatch, start_method
        )
        assert [r.to_dict() for r in results] == expected

    def test_ledger_entry_carries_trace_and_span_summary(
        self, tmp_path, monkeypatch, start_method
    ):
        runner, _, _ = run_traced_sweep(tmp_path, monkeypatch, start_method)
        assert runner.last_run_id is not None
        entry = RunLedger().get(runner.last_run_id)
        assert entry["extra"]["trace"] == runner.last_trace_id
        spans = entry["extra"]["spans"]
        assert spans == runner.last_span_summary
        for name in ("sweep", "dispatch", "cell", "run"):
            assert spans[name]["count"] >= 1
            assert spans[name]["total_s"] >= 0
        assert spans["cell"]["count"] == len(SPECS)
