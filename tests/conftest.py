"""Shared fixtures: a small machine and tiny deterministic workloads."""

from __future__ import annotations

import pytest

from repro.sim.machine import MachineConfig
from repro.workloads.generator import BenchmarkSpec, EpochSpec, LockSpec, build_workload
from repro.workloads.patterns import PatternKind


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a throwaway directory for every test.

    Sweeps and CLI commands record history automatically; without this
    the suite would append junk entries to the user's real ledger.
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    # Likewise for the telemetry feed: a REPRO_FEED inherited from the
    # environment would make every sweep in the suite append to it.
    monkeypatch.delenv("REPRO_FEED", raising=False)
    monkeypatch.delenv("REPRO_SPANS", raising=False)


@pytest.fixture
def small_machine() -> MachineConfig:
    """A 16-core machine with small caches (fast to simulate)."""
    return MachineConfig.small()


def make_spec(
    pattern: PatternKind = PatternKind.STABLE,
    *,
    epochs: int = 2,
    iterations: int = 6,
    locks: int = 0,
    consume: int = 6,
    produce: int = 6,
    private: int = 2,
    **epoch_kw,
) -> BenchmarkSpec:
    """Build a small benchmark spec for tests."""
    lock_specs = (
        (LockSpec(n_sites=locks, protected_blocks=2),) if locks else ()
    )
    return BenchmarkSpec(
        name=f"test-{pattern.value}",
        epochs=tuple(
            EpochSpec(
                pattern=pattern,
                consume_blocks=consume,
                produce_blocks=produce,
                private_blocks=private,
                think=10,
                **epoch_kw,
            )
            for _ in range(epochs)
        ),
        locks=lock_specs,
        iterations=iterations,
        region_blocks=8,
    )


@pytest.fixture
def stable_workload():
    """A tiny stable producer-consumer workload."""
    return build_workload(make_spec(PatternKind.STABLE))


@pytest.fixture
def stride_workload():
    """A tiny stride-2 repetitive workload."""
    return build_workload(
        make_spec(PatternKind.STRIDE, stride=2, iterations=10)
    )


@pytest.fixture
def lock_workload():
    """A tiny critical-section-heavy workload."""
    return build_workload(
        make_spec(PatternKind.PRIVATE, epochs=1, iterations=6, locks=2)
    )
