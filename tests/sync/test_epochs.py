"""Tests for sync-epoch segmentation."""

from repro.sync.epochs import EpochTracker
from repro.sync.points import StaticSyncId, SyncKind


def _barrier(pc: int) -> StaticSyncId:
    return StaticSyncId(kind=SyncKind.BARRIER, pc=pc)


def _lock(addr: int) -> StaticSyncId:
    return StaticSyncId(kind=SyncKind.LOCK, pc=0x10, lock_addr=addr)


class TestEpochTracker:
    def test_first_sync_point_has_no_ended_epoch(self):
        tracker = EpochTracker(thread=0)
        ended, new, point = tracker.observe(_barrier(1))
        assert ended is None
        assert new.begin.static == _barrier(1)
        assert point.dynamic_id.occurrence == 1

    def test_epoch_is_described_by_beginning_point(self):
        tracker = EpochTracker(thread=0)
        tracker.observe(_barrier(1))
        ended, new, _ = tracker.observe(_barrier(2))
        assert ended.static_id == _barrier(1)
        assert new.static_id == _barrier(2)

    def test_dynamic_ids_count_per_static_point(self):
        tracker = EpochTracker(thread=0)
        for expected in (1, 2, 3):
            _, new, _ = tracker.observe(_barrier(1))
            assert new.instance == expected
        assert tracker.occurrence_count(_barrier(1)) == 3

    def test_interleaved_static_points_count_separately(self):
        tracker = EpochTracker(thread=0)
        tracker.observe(_barrier(1))
        tracker.observe(_barrier(2))
        _, new, _ = tracker.observe(_barrier(1))
        assert new.instance == 2
        assert tracker.occurrence_count(_barrier(2)) == 1

    def test_critical_section_detection(self):
        tracker = EpochTracker(thread=0)
        _, cs, _ = tracker.observe(_lock(0x80))
        assert cs.is_critical_section
        assert cs.table_key == ("lock", 0x80)

    def test_barrier_epoch_is_not_critical_section(self):
        tracker = EpochTracker(thread=0)
        _, epoch, _ = tracker.observe(_barrier(5))
        assert not epoch.is_critical_section

    def test_finish_ends_trailing_epoch(self):
        tracker = EpochTracker(thread=0)
        tracker.observe(_barrier(1))
        trailing = tracker.finish()
        assert trailing is not None
        assert tracker.current_epoch is None
        assert tracker.ended_epochs[-1] is trailing

    def test_finish_with_no_epoch_returns_none(self):
        tracker = EpochTracker(thread=0)
        assert tracker.finish() is None

    def test_ended_epochs_in_order(self):
        tracker = EpochTracker(thread=0)
        tracker.observe(_barrier(1))
        tracker.observe(_barrier(2))
        tracker.observe(_barrier(3))
        pcs = [e.static_id.pc for e in tracker.ended_epochs]
        assert pcs == [1, 2]
