"""Tests for sync-point identities."""

import pytest

from repro.sync.points import DynamicSyncId, StaticSyncId, SyncKind, SyncPoint


class TestSyncKind:
    def test_lock_is_acquire(self):
        assert SyncKind.LOCK.is_lock_acquire

    def test_others_are_not_acquire(self):
        for kind in SyncKind:
            if kind is not SyncKind.LOCK:
                assert not kind.is_lock_acquire


class TestStaticSyncId:
    def test_barrier_keyed_by_pc(self):
        sid = StaticSyncId(kind=SyncKind.BARRIER, pc=0x400)
        assert sid.table_key == ("pc", 0x400)

    def test_lock_keyed_by_lock_address(self):
        sid = StaticSyncId(kind=SyncKind.LOCK, pc=0x400, lock_addr=0x1000)
        assert sid.table_key == ("lock", 0x1000)

    def test_unlock_keyed_by_pc_not_lock(self):
        """An epoch beginning at unlock is an ordinary PC-keyed epoch."""
        sid = StaticSyncId(kind=SyncKind.UNLOCK, pc=0x500, lock_addr=0x1000)
        assert sid.table_key == ("pc", 0x500)

    def test_lock_requires_lock_addr(self):
        with pytest.raises(ValueError):
            StaticSyncId(kind=SyncKind.LOCK, pc=0x400)

    def test_unlock_requires_lock_addr(self):
        with pytest.raises(ValueError):
            StaticSyncId(kind=SyncKind.UNLOCK, pc=0x400)

    def test_same_lock_same_key_across_pcs(self):
        """Critical sections protected by the same lock share a key."""
        a = StaticSyncId(kind=SyncKind.LOCK, pc=1, lock_addr=0x99)
        b = StaticSyncId(kind=SyncKind.LOCK, pc=2, lock_addr=0x99)
        assert a.table_key == b.table_key

    def test_hashable_and_equal(self):
        a = StaticSyncId(kind=SyncKind.BARRIER, pc=7)
        b = StaticSyncId(kind=SyncKind.BARRIER, pc=7)
        assert a == b
        assert hash(a) == hash(b)


class TestDynamicSyncId:
    def test_occurrence_starts_at_one(self):
        sid = StaticSyncId(kind=SyncKind.BARRIER, pc=1)
        with pytest.raises(ValueError):
            DynamicSyncId(static=sid, occurrence=0)

    def test_sync_point_accessors(self):
        sid = StaticSyncId(kind=SyncKind.BARRIER, pc=1)
        point = SyncPoint(thread=3, dynamic_id=DynamicSyncId(sid, 2))
        assert point.static_id is sid
        assert point.kind is SyncKind.BARRIER
        assert point.dynamic_id.occurrence == 2
