"""Property-based coherence invariants under random transaction streams.

The single-writer/multiple-reader invariant and directory/cache agreement
must hold after ANY sequence of read/write/upgrade transactions with ANY
predicted sets (including garbage predictions) — prediction may only
accelerate, never corrupt.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.directory import Directory
from repro.coherence.protocol import DirectoryProtocol
from repro.coherence.snooping import BroadcastProtocol
from repro.coherence.states import Mesif
from repro.noc.network import Network
from repro.noc.topology import Mesh2D

N = 16

ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=N - 1),   # core
        st.integers(min_value=0, max_value=7),       # block
        st.frozensets(st.integers(0, N - 1), max_size=4),  # predicted
        st.booleans(),                               # use prediction?
    ),
    max_size=60,
)


def make_protocol(cls):
    hiers = [
        PrivateHierarchy(
            c,
            l1=CacheConfig(size=256, assoc=1, line_size=64),
            l2=CacheConfig(size=2048, assoc=2, line_size=64),
        )
        for c in range(N)
    ]
    return cls(hiers, Directory(N), Network(Mesh2D(4, 4)))


def drive(proto, script):
    """Execute a transaction script, routing writes through upgrade when
    the core already holds a copy (as the hierarchy would)."""
    for op, core, block, predicted, use_pred in script:
        pred = predicted if use_pred else None
        state = proto.hierarchies[core].peek_state(block)
        if op == "read":
            if state is Mesif.INVALID:
                proto.read_miss(core, block, pred)
        else:
            if state is Mesif.INVALID:
                proto.write_miss(core, block, pred)
            elif not state.can_write:
                proto.upgrade_miss(core, block, pred)
            else:
                proto.hierarchies[core].set_state(block, Mesif.MODIFIED)


def check_invariants(proto):
    for block in range(8):
        ent = proto.directory.peek(block)
        # Directory sharers == caches that actually hold the block.
        holders = {
            c
            for c in range(N)
            if proto.hierarchies[c].peek_state(block) is not Mesif.INVALID
        }
        assert holders == ent.sharers
        # Single writer: at most one M/E copy, and no other copies with it.
        writers = [
            c
            for c in holders
            if proto.hierarchies[c].peek_state(block).can_write
        ]
        assert len(writers) <= 1
        if writers:
            assert holders == {writers[0]}
            assert ent.owner == writers[0]
        # At most one Forward copy.
        forwarders = [
            c
            for c in holders
            if proto.hierarchies[c].peek_state(block) is Mesif.FORWARD
        ]
        assert len(forwarders) <= 1


class TestCoherenceInvariants:
    @settings(max_examples=60, deadline=None)
    @given(ops)
    def test_directory_protocol_invariants(self, script):
        proto = make_protocol(DirectoryProtocol)
        drive(proto, script)
        check_invariants(proto)

    @settings(max_examples=60, deadline=None)
    @given(ops)
    def test_broadcast_protocol_invariants(self, script):
        proto = make_protocol(BroadcastProtocol)
        drive(proto, script)
        check_invariants(proto)

    @settings(max_examples=60, deadline=None)
    @given(ops)
    def test_prediction_never_changes_final_state(self, script):
        """Same script with and without predictions -> same sharing state."""
        with_pred = make_protocol(DirectoryProtocol)
        without = make_protocol(DirectoryProtocol)
        drive(with_pred, script)
        drive(without, [(op, c, b, p, False) for op, c, b, p, _ in script])
        for block in range(8):
            a = with_pred.directory.peek(block)
            b = without.directory.peek(block)
            assert a.sharers == b.sharers
            assert a.owner == b.owner
            assert a.dirty == b.dirty

    @settings(max_examples=40, deadline=None)
    @given(ops)
    def test_prediction_never_increases_latency(self, script):
        """Oracle predictions keep total latency at or below baseline up
        to a small tolerance (predicted writes wait for direct
        requester<->sharer acks, whose legs can occasionally exceed the
        home-routed legs)."""
        from repro.predictors.oracle import OraclePredictor

        base = make_protocol(DirectoryProtocol)
        fast = make_protocol(DirectoryProtocol)
        oracle = OraclePredictor(fast.directory)

        base_latency = 0
        for op, core, block, _, _ in script:
            state = base.hierarchies[core].peek_state(block)
            if op == "read" and state is Mesif.INVALID:
                base_latency += base.read_miss(core, block).latency
            elif op == "write" and state is Mesif.INVALID:
                base_latency += base.write_miss(core, block).latency
            elif op == "write" and not state.can_write:
                base_latency += base.upgrade_miss(core, block).latency

        fast_latency = 0
        from repro.coherence.protocol import MissKind

        for op, core, block, _, _ in script:
            state = fast.hierarchies[core].peek_state(block)
            if op == "read" and state is Mesif.INVALID:
                p = oracle.predict(core, block, 0, MissKind.READ)
                fast_latency += fast.read_miss(
                    core, block, p.targets if p else None
                ).latency
            elif op == "write" and state is Mesif.INVALID:
                p = oracle.predict(core, block, 0, MissKind.WRITE)
                fast_latency += fast.write_miss(
                    core, block, p.targets if p else None
                ).latency
            elif op == "write" and not state.can_write:
                p = oracle.predict(core, block, 0, MissKind.UPGRADE)
                fast_latency += fast.upgrade_miss(
                    core, block, p.targets if p else None
                ).latency

        assert fast_latency <= base_latency * 1.03 + 10
