"""Property tests for the differential checker and the trace fuzzer.

Two families:

* every workload in the benchmark suite, at reduced scale, must run
  identically through all four protocol backends — the differential
  checker's core guarantee, exercised over the full input corpus;
* fuzz-case generation, shrinking, and replay are deterministic
  functions of the seed, so a saved reproducer means the same thing on
  every machine.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.case import load_case, replay_case, save_case
from repro.check.differential import check_workload
from repro.check.fuzz import run_case
from repro.workloads.fuzz import FuzzConfig, generate_fuzz_case, well_formed
from repro.workloads.suite import SUITE, load_benchmark

#: Small enough that the full 17-workload sweep stays in CI budget.
SCALE = 0.01

TINY = FuzzConfig(
    num_cores=4, segment_events=16, barrier_rounds=2, storm_blocks=32
)


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_workload_agrees_across_all_backends(name):
    wl = load_benchmark(name, scale=SCALE)
    divergences = check_workload(
        wl,
        protocols=("directory", "broadcast", "multicast", "limited"),
        predictors=("none",),
    )
    assert divergences == []


class TestFuzzDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_generation_is_a_function_of_the_seed(self, seed):
        a = generate_fuzz_case(seed, TINY)
        b = generate_fuzz_case(seed, TINY)
        assert a.workload.events == b.workload.events
        assert a.migrations == b.migrations
        assert well_formed(a.workload)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None)
    def test_generated_cases_run_clean_on_correct_protocols(self, seed):
        fc = generate_fuzz_case(seed, TINY)
        assert run_case(fc.workload, fc.migrations) is None

    def test_saved_case_replays_identically(self, tmp_path):
        fc = generate_fuzz_case(11, TINY)
        path = save_case(
            str(tmp_path),
            workload=fc.workload,
            migrations=fc.migrations,
            seed=11,
        )
        workload, migrations, _doc = load_case(path)
        assert workload.events == fc.workload.events
        assert migrations == fc.migrations
        # A clean case replays clean, twice.
        assert replay_case(path) is None
        assert replay_case(path) is None
