"""Hypothesis properties of the SP-table and profile round-trips."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sp_table import SPTable

signatures = st.frozensets(st.integers(min_value=0, max_value=15), max_size=6)
keys = st.one_of(
    st.tuples(st.just("pc"), st.integers(0, 50)),
    st.tuples(st.just("lock"), st.integers(0, 10)),
)
records = st.lists(
    st.tuples(st.integers(0, 15), keys, signatures, st.integers(0, 100)),
    max_size=40,
)


class TestSPTableProperties:
    @settings(max_examples=50)
    @given(records, st.integers(min_value=1, max_value=4))
    def test_history_depth_invariant(self, recs, depth):
        table = SPTable(depth=depth)
        for core, key, sig, vol in recs:
            entry = table.record(core, key, sig, vol)
            assert len(entry.history()) <= depth
            assert entry.history()[-1] == sig

    @settings(max_examples=50)
    @given(records)
    def test_lock_entries_shared_pc_entries_private(self, recs):
        table = SPTable(depth=2)
        for core, key, sig, vol in recs:
            table.record(core, key, sig, vol)
        for core, key, sig, vol in recs:
            if key[0] == "lock":
                # Any core sees the shared lock entry.
                assert table.probe((core + 1) % 16, key) is not None
            else:
                entry_mine = table.probe(core, key)
                assert entry_mine is not None

    @settings(max_examples=50)
    @given(records, st.integers(min_value=1, max_value=8))
    def test_capacity_never_exceeded(self, recs, cap):
        table = SPTable(depth=2, max_entries=cap)
        for core, key, sig, vol in recs:
            table.record(core, key, sig, vol)
            assert len(table) <= cap

    @settings(max_examples=30)
    @given(records)
    def test_profile_round_trip_preserves_history(self, recs):
        table = SPTable(depth=2)
        for core, key, sig, vol in recs:
            table.record(core, key, sig, vol)
        profile = json.loads(json.dumps(table.export_profile()))

        fresh = SPTable(depth=2)
        fresh.preload_profile(profile)
        for core, key, sig, vol in recs:
            original = table.probe(core, key)
            restored = fresh.probe(core, key)
            assert restored is not None
            assert restored.history() == original.history()
