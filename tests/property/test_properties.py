"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache, CacheConfig
from repro.core.confidence import ConfidenceCounter
from repro.core.patterns import predict_from_history, union_of
from repro.core.signatures import Signature, extract_hot_set
from repro.core.sp_table import SPTableEntry
from repro.noc.topology import Mesh2D

volumes = st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                   max_size=32)
signatures = st.frozensets(st.integers(min_value=0, max_value=15), max_size=8)


class TestHotSetProperties:
    @given(volumes, st.floats(min_value=0.01, max_value=1.0))
    def test_hot_set_members_have_volume(self, counts, threshold):
        hot = extract_hot_set(counts, threshold=threshold)
        for core in hot:
            assert counts[core] > 0

    @given(volumes)
    def test_lower_threshold_is_superset(self, counts):
        strict = extract_hot_set(counts, threshold=0.5)
        loose = extract_hot_set(counts, threshold=0.05)
        assert strict <= loose

    @given(volumes, st.integers(min_value=0, max_value=31))
    def test_self_never_hot(self, counts, self_core):
        if self_core >= len(counts):
            self_core = self_core % len(counts)
        hot = extract_hot_set(counts, self_core=self_core)
        assert self_core not in hot

    @given(volumes)
    def test_hot_set_covers_at_least_threshold_each(self, counts):
        total = sum(counts)
        hot = extract_hot_set(counts, threshold=0.10)
        for core in hot:
            assert counts[core] >= 0.10 * total


class TestPatternPolicyProperties:
    @given(st.lists(signatures, max_size=2), st.booleans())
    def test_prediction_drawn_from_history(self, history, alternating):
        pred = predict_from_history(history, alternating=alternating)
        if pred is None:
            assert not history
        else:
            assert pred <= union_of(history)

    @given(signatures)
    def test_stable_history_predicts_itself(self, sig):
        if sig:
            assert predict_from_history([sig, sig]) == sig

    @given(st.lists(signatures, min_size=1, max_size=5))
    def test_union_contains_every_signature(self, history):
        u = union_of(history)
        for sig in history:
            assert sig <= u


class TestSPTableEntryProperties:
    @given(st.lists(st.tuples(signatures, st.integers(0, 1000)), min_size=1,
                    max_size=20),
           st.integers(min_value=1, max_value=4))
    def test_history_never_exceeds_depth(self, pushes, depth):
        entry = SPTableEntry(depth=depth)
        for sig, vol in pushes:
            entry.push(sig, vol)
            assert len(entry.signatures) <= depth
        assert entry.history() == [s for s, _ in pushes][-depth:]

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=30))
    def test_mean_volume_matches_arithmetic_mean(self, vols):
        entry = SPTableEntry(depth=2)
        for v in vols:
            entry.push(Signature(), v)
        assert abs(entry.mean_volume - sum(vols) / len(vols)) < 1e-6


class TestConfidenceProperties:
    @given(st.lists(st.booleans(), max_size=100),
           st.integers(min_value=1, max_value=6))
    def test_counter_stays_in_range(self, outcomes, bits):
        c = ConfidenceCounter(bits=bits)
        for ok in outcomes:
            c.record(ok)
            assert 0 <= c.value <= c.max_value


class TestCacheProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=200))
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = Cache(CacheConfig(size=512, assoc=2, line_size=64))
        for block in blocks:
            cache.fill(block, "S")
            assert cache.occupancy() <= cache.config.num_lines

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=200))
    def test_filled_block_is_resident_until_evicted(self, blocks):
        cache = Cache(CacheConfig(size=512, assoc=2, line_size=64))
        for block in blocks:
            cache.fill(block, "S")
            assert cache.lookup(block) is not None

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                    max_size=100))
    def test_no_duplicate_blocks(self, blocks):
        cache = Cache(CacheConfig(size=512, assoc=2, line_size=64))
        for block in blocks:
            cache.fill(block, "S")
        resident = cache.resident_blocks()
        assert len(resident) == len(set(resident))


class TestMeshProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8),
           st.data())
    def test_triangle_inequality(self, w, h, data):
        mesh = Mesh2D(width=w, height=h)
        n = mesh.num_nodes
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        c = data.draw(st.integers(0, n - 1))
        assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8),
           st.data())
    def test_route_endpoints(self, w, h, data):
        mesh = Mesh2D(width=w, height=h)
        n = mesh.num_nodes
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        route = mesh.route(a, b)
        assert route[0] == a and route[-1] == b
        # Consecutive nodes are mesh neighbours.
        for u, v in zip(route, route[1:]):
            assert mesh.hops(u, v) == 1
