"""Hypothesis settings for the property suite.

Derandomized so a green run is reproducible: examples are derived from
the test body, not a per-run seed.  Delete the profile locally when
hunting for new counterexamples.
"""

from hypothesis import settings

settings.register_profile("repro", derandomize=True)
settings.load_profile("repro")
