"""Hypothesis properties of the simulation engine over random specs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictor import SPPredictor
from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.generator import BenchmarkSpec, EpochSpec, LockSpec, build_workload
from repro.workloads.patterns import PatternKind

MACHINE = MachineConfig.small()

epoch_specs = st.builds(
    EpochSpec,
    pattern=st.sampled_from(list(PatternKind)),
    consume_blocks=st.integers(min_value=0, max_value=6),
    produce_blocks=st.integers(min_value=0, max_value=6),
    private_blocks=st.integers(min_value=0, max_value=4),
    rereads=st.integers(min_value=0, max_value=1),
    think=st.integers(min_value=0, max_value=50),
    stride=st.integers(min_value=2, max_value=4),
    noisy_every=st.sampled_from([0, 3]),
)

bench_specs = st.builds(
    BenchmarkSpec,
    name=st.just("prop"),
    epochs=st.lists(epoch_specs, min_size=1, max_size=3).map(tuple),
    locks=st.sampled_from([(), (LockSpec(n_sites=1, protected_blocks=2),)]),
    iterations=st.integers(min_value=2, max_value=5),
    region_blocks=st.just(8),
    seed=st.integers(min_value=0, max_value=5),
)


class TestEngineProperties:
    @settings(max_examples=25, deadline=None)
    @given(bench_specs)
    def test_any_spec_simulates_to_completion(self, spec):
        w = build_workload(spec)
        result = simulate(w, machine=MACHINE)
        assert result.accesses == w.memory_accesses()
        assert result.sync_points == w.sync_points()
        assert result.l1_hits + result.l2_hits + result.misses == result.accesses
        assert all(c >= 0 for c in result.core_cycles)

    @settings(max_examples=15, deadline=None)
    @given(bench_specs)
    def test_coherence_invariants_hold_under_any_spec(self, spec):
        from repro.sim.engine import SimulationEngine

        w = build_workload(spec)
        engine = SimulationEngine(w, machine=MACHINE, verify_coherence=True)
        result = engine.run()  # CoherenceViolation would raise
        assert engine.verifier.checks == result.misses

    @settings(max_examples=15, deadline=None)
    @given(bench_specs)
    def test_prediction_preserves_miss_classification(self, spec):
        """SP-prediction must not change what is and isn't communicating
        (modulo lock-order timing shifts, absent in lock-free specs)."""
        if spec.locks:
            spec = BenchmarkSpec(
                name=spec.name, epochs=spec.epochs, locks=(),
                iterations=spec.iterations, region_blocks=spec.region_blocks,
                seed=spec.seed,
            )
        w = build_workload(spec)
        base = simulate(w, machine=MACHINE)
        sp = simulate(w, machine=MACHINE, predictor=SPPredictor(16))
        # Prediction shifts *when* invalidations land, which can change a
        # later LRU victim and flip the odd hit/miss — the miss stream
        # must stay materially identical, not bit-identical.
        slack = max(2, round(0.01 * base.misses))
        assert abs(sp.misses - base.misses) <= slack
        assert abs(sp.comm_misses - base.comm_misses) <= slack
        # Near-monotone latency: a predicted *write* must wait for the
        # direct requester<->sharer ack legs, which can exceed the
        # home-routed legs when the requester sits far from a sharer the
        # home is close to.  On the micro-workloads hypothesis generates
        # (a handful of misses), a few such writes can move the average
        # by several percent, so the bound is a regression guard rather
        # than strict monotonicity.
        assert sp.avg_miss_latency <= base.avg_miss_latency * 1.10 + 1.0

    @settings(max_examples=10, deadline=None)
    @given(bench_specs, st.sampled_from(["broadcast", "multicast"]))
    def test_snooping_protocols_complete(self, spec, protocol):
        w = build_workload(spec)
        result = simulate(w, machine=MACHINE, protocol=protocol)
        assert result.indirections == 0
        assert result.accesses == w.memory_accesses()
