"""Regression snapshots of per-benchmark headline metrics.

Guards against silent drift: a change to the workload generator, the
protocol, or the predictor that moves any benchmark's communicating
ratio, SP accuracy, or SP latency gain beyond tolerance fails here with
the exact benchmark named.

Regenerate after an *intentional* behaviour change with::

    python - <<'PY'
    ...see tests/data/snapshots_scale04.json header in git history, or
    simply re-run the generation snippet in CONTRIBUTING.md...
    PY
"""

import json
import pathlib

import pytest

from repro.core.predictor import SPPredictor
from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.suite import load_benchmark

_SNAPSHOT_PATH = pathlib.Path(__file__).parent.parent / "data" / "snapshots_scale04.json"

#: Absolute tolerances: generous enough for cross-platform dict-order
#: effects (there are none — runs are deterministic — but scheduling
#: heuristics may change deliberately), tight enough to catch real drift.
TOLERANCES = {
    "comm_ratio": 0.06,
    "sp_accuracy": 0.08,
    "sp_latency_ratio": 0.05,
}


@pytest.fixture(scope="module")
def snapshots():
    with open(_SNAPSHOT_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def machine():
    return MachineConfig()


SPOT_CHECK = ("x264", "radiosity", "lu", "streamcluster", "water-ns")


class TestSnapshots:
    def test_snapshot_file_covers_suite(self, snapshots):
        assert len(snapshots["benchmarks"]) == 17
        assert snapshots["scale"] == 0.4

    @pytest.mark.parametrize("name", SPOT_CHECK)
    def test_benchmark_matches_snapshot(self, name, snapshots, machine):
        expected = snapshots["benchmarks"][name]
        scale = snapshots["scale"]
        w = load_benchmark(name, scale=scale)
        base = simulate(w, machine=machine)
        sp = simulate(w, machine=machine, predictor=SPPredictor(16))
        measured = {
            "comm_ratio": base.comm_ratio,
            "sp_accuracy": sp.accuracy,
            "sp_latency_ratio": sp.avg_miss_latency / base.avg_miss_latency,
        }
        for metric, tolerance in TOLERANCES.items():
            assert measured[metric] == pytest.approx(
                expected[metric], abs=tolerance
            ), f"{name}.{metric}: snapshot {expected[metric]}, got {measured[metric]:.4f}"

    @pytest.mark.parametrize("name", SPOT_CHECK)
    def test_miss_counts_exact(self, name, snapshots, machine):
        """Baseline miss counts are fully deterministic: exact match."""
        expected = snapshots["benchmarks"][name]["misses"]
        w = load_benchmark(name, scale=snapshots["scale"])
        base = simulate(w, machine=machine)
        assert base.misses == expected
