"""Suite calibration: every benchmark behaves like its paper namesake.

Slowish (simulates the whole suite once), but it is the test that keeps
workload tuning honest: if a spec change drifts a benchmark away from
its Fig. 1 communicating-miss target or breaks its epoch structure,
this fails before any figure silently changes shape.
"""

import pytest

from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.suite import SUITE, load_benchmark

SCALE = 0.4


@pytest.fixture(scope="module")
def baseline_runs():
    machine = MachineConfig()
    runs = {}
    for name in SUITE:
        runs[name] = simulate(
            load_benchmark(name, scale=SCALE), machine=machine
        )
    return runs


class TestCommRatioCalibration:
    def test_each_benchmark_near_its_target(self, baseline_runs):
        failures = []
        for name, spec in SUITE.items():
            measured = baseline_runs[name].comm_ratio
            target = spec.target_comm_ratio
            if abs(measured - target) > 0.20:
                failures.append(f"{name}: target {target}, got {measured:.2f}")
        assert not failures, "; ".join(failures)

    def test_suite_average_near_paper(self, baseline_runs):
        ratios = [r.comm_ratio for r in baseline_runs.values()]
        avg = sum(ratios) / len(ratios)
        # Paper Fig. 1: 62% average.
        assert 0.45 <= avg <= 0.75

    def test_low_and_high_extremes_preserved(self, baseline_runs):
        assert baseline_runs["lu"].comm_ratio < 0.40
        assert baseline_runs["radix"].comm_ratio < 0.40
        assert baseline_runs["x264"].comm_ratio > 0.60
        assert baseline_runs["water-sp"].comm_ratio > 0.60


class TestStructuralSanity:
    def test_every_run_exercises_locks(self, baseline_runs):
        for name, run in baseline_runs.items():
            assert run.sync_points > 0, name

    def test_all_cores_participate(self, baseline_runs):
        for name, run in baseline_runs.items():
            active = sum(1 for c in run.core_cycles if c > 0)
            assert active == 16, name

    def test_miss_rates_sane(self, baseline_runs):
        for name, run in baseline_runs.items():
            assert 0 < run.misses <= run.accesses, name
            assert run.offchip_misses <= run.misses, name
