"""End-to-end integration: suite workloads through the full stack."""

import pytest

from repro import (
    AddrPredictor,
    InstPredictor,
    SPPredictor,
    UniPredictor,
    load_benchmark,
    simulate,
)
from repro.sim.machine import MachineConfig

SCALE = 0.15


@pytest.fixture(scope="module")
def x264():
    return load_benchmark("x264", scale=0.4)


@pytest.fixture(scope="module")
def machine():
    return MachineConfig()


class TestFullStack:
    def test_baseline_directory_run(self, x264, machine):
        r = simulate(x264, machine=machine)
        assert r.misses > 0
        assert 0.0 < r.comm_ratio < 1.0
        assert r.indirections == r.misses  # every miss pays indirection

    def test_sp_beats_baseline_on_repetitive_workload(self, x264, machine):
        base = simulate(x264, machine=machine)
        sp = simulate(x264, machine=machine, predictor=SPPredictor(16))
        assert sp.accuracy > 0.5
        assert sp.avg_miss_latency < base.avg_miss_latency
        assert sp.cycles < base.cycles
        assert sp.network.bytes_total > base.network.bytes_total

    def test_broadcast_bounds_latency_but_floods_network(self, x264, machine):
        base = simulate(x264, machine=machine)
        sp = simulate(x264, machine=machine, predictor=SPPredictor(16))
        bcast = simulate(x264, machine=machine, protocol="broadcast")
        assert bcast.avg_miss_latency < sp.avg_miss_latency
        assert bcast.network.bytes_total > 1.5 * base.network.bytes_total
        assert bcast.snoop_lookups > 10 * base.snoop_lookups

    def test_all_predictors_run_on_one_workload(self, machine):
        w = load_benchmark("facesim", scale=0.2)
        base = simulate(w, machine=machine)
        for predictor in (
            SPPredictor(16),
            AddrPredictor(16),
            InstPredictor(16),
            UniPredictor(16),
        ):
            r = simulate(w, machine=machine, predictor=predictor)
            assert r.pred_attempted > 0, predictor.name
            assert r.pred_correct > 0, predictor.name
            # Prediction must not materially change the miss stream (lock
            # acquisition order may shift a handful of hits/misses).
            assert r.misses == pytest.approx(base.misses, rel=0.01), predictor.name

    @pytest.mark.parametrize(
        "name", ["fmm", "lu", "radiosity", "fft", "streamcluster", "dedup"]
    )
    def test_suite_members_simulate_cleanly(self, name, machine):
        w = load_benchmark(name, scale=SCALE)
        r = simulate(w, machine=machine, predictor=SPPredictor(16))
        assert r.misses > 0
        assert r.cycles > 0
        assert max(r.core_cycles) == r.cycles

    def test_epoch_collection_at_scale(self, machine):
        w = load_benchmark("bodytrack", scale=0.4)
        r = simulate(w, machine=machine, collect_epochs=True)
        assert len(r.epoch_records) > 100
        # Dynamic instances of the same epoch should exist.
        keys = {}
        for rec in r.epoch_records:
            keys.setdefault((rec.core, rec.key), []).append(rec.instance)
        assert any(len(v) > 2 for v in keys.values())


class TestPaperShapeInvariants:
    """Coarse shape checks the reproduction must preserve."""

    def test_latency_ordering_broadcast_sp_directory(self, machine):
        w = load_benchmark("water-ns", scale=0.25)
        base = simulate(w, machine=machine)
        sp = simulate(w, machine=machine, predictor=SPPredictor(16))
        bcast = simulate(w, machine=machine, protocol="broadcast")
        assert (
            bcast.avg_miss_latency
            <= sp.avg_miss_latency
            <= base.avg_miss_latency
        )

    def test_bandwidth_ordering_directory_sp_broadcast(self, machine):
        w = load_benchmark("water-ns", scale=0.25)
        base = simulate(w, machine=machine)
        sp = simulate(w, machine=machine, predictor=SPPredictor(16))
        bcast = simulate(w, machine=machine, protocol="broadcast")
        assert (
            base.network.bytes_total
            <= sp.network.bytes_total
            <= bcast.network.bytes_total
        )

    def test_ideal_dominates_actual_accuracy(self, machine):
        w = load_benchmark("ocean", scale=0.2)
        sp = simulate(w, machine=machine, predictor=SPPredictor(16))
        assert sp.ideal_accuracy >= sp.accuracy

    def test_sp_table_stays_tiny(self, machine):
        """Section 4.6: a ~2KB table suffices for the worst application."""
        w = load_benchmark("fmm", scale=0.2)
        predictor = SPPredictor(16)
        simulate(w, machine=machine, predictor=predictor)
        table_bits = predictor.table.storage_bits(16)
        assert table_bits < 8 * 4096  # well under 4 KB
