"""Tests for the NoC latency/traffic model."""

from repro.noc.network import MESSAGE_BYTES, MessageClass, Network, NetworkStats
from repro.noc.topology import Mesh2D


def make_net() -> Network:
    return Network(Mesh2D(4, 4), router_latency=2, link_latency=1)


class TestLatency:
    def test_latency_proportional_to_hops(self):
        net = make_net()
        assert net.latency(0, 1) == 3
        assert net.latency(0, 15) == 18

    def test_local_latency_zero(self):
        net = make_net()
        assert net.latency(5, 5) == 0

    def test_hop_latency(self):
        assert make_net().hop_latency() == 3


class TestTrafficAccounting:
    def test_send_accounts_bytes(self):
        net = make_net()
        net.send(0, 1, MessageClass.CONTROL, "x")
        assert net.stats.bytes_total == MESSAGE_BYTES[MessageClass.CONTROL]
        assert net.stats.messages == 1

    def test_data_messages_carry_line(self):
        assert MESSAGE_BYTES[MessageClass.DATA] == 72
        assert MESSAGE_BYTES[MessageClass.CONTROL] == 8

    def test_byte_links_and_routers(self):
        net = make_net()
        net.send(0, 3, MessageClass.CONTROL, "x")  # 3 hops
        assert net.stats.byte_links == 8 * 3
        assert net.stats.byte_routers == 8 * 4

    def test_categories_tracked_separately(self):
        net = make_net()
        net.send(0, 1, MessageClass.CONTROL, "a")
        net.send(0, 1, MessageClass.DATA, "b")
        assert net.stats.bytes_by_category == {"a": 8, "b": 72}

    def test_multicast_skips_self_and_returns_worst(self):
        net = make_net()
        worst = net.multicast(0, [0, 1, 15], MessageClass.CONTROL, "x")
        assert worst == net.latency(0, 15)
        assert net.stats.messages == 2  # self skipped

    def test_broadcast_reaches_all_others(self):
        net = make_net()
        worst = net.broadcast(5, MessageClass.CONTROL, "x")
        assert net.stats.messages == 15
        assert worst == max(net.latency(5, d) for d in range(16) if d != 5)

    def test_stats_merge(self):
        a = NetworkStats()
        b = NetworkStats()
        a.add(10, 2, "x")
        b.add(5, 1, "x")
        b.add(7, 0, "y")
        a.merge(b)
        assert a.bytes_total == 22
        assert a.bytes_by_category == {"x": 15, "y": 7}
        assert a.messages == 3
