"""Tests for the torus topology extension."""

import pytest

from repro.noc.topology import Mesh2D, Torus2D


class TestTorus2D:
    def test_wraparound_shortens_edges(self):
        torus = Torus2D(width=4, height=4)
        mesh = Mesh2D(width=4, height=4)
        # Corner to corner: 6 mesh hops, 2 torus hops (wrap both dims).
        assert mesh.hops(0, 15) == 6
        assert torus.hops(0, 15) == 2

    def test_hops_bounded_by_half_dimensions(self):
        torus = Torus2D(width=4, height=4)
        for a in range(16):
            for b in range(16):
                assert torus.hops(a, b) <= 2 + 2

    def test_hops_symmetric(self):
        torus = Torus2D(width=4, height=4)
        for a in range(16):
            for b in range(16):
                assert torus.hops(a, b) == torus.hops(b, a)

    def test_never_longer_than_mesh(self):
        torus = Torus2D(width=4, height=4)
        mesh = Mesh2D(width=4, height=4)
        for a in range(16):
            for b in range(16):
                assert torus.hops(a, b) <= mesh.hops(a, b)

    def test_route_endpoints_and_lengths(self):
        torus = Torus2D(width=4, height=4)
        for a in range(16):
            for b in range(16):
                route = torus.route(a, b)
                assert route[0] == a and route[-1] == b
                assert len(route) == torus.hops(a, b) + 1
                for u, v in zip(route, route[1:]):
                    assert torus.hops(u, v) == 1

    def test_average_hops_below_mesh(self):
        assert Torus2D(4, 4).average_hops() < Mesh2D(4, 4).average_hops()

    def test_route_uses_wraparound(self):
        torus = Torus2D(width=4, height=1)
        assert torus.route(0, 3) == [0, 3]


class TestMachineTopology:
    def test_default_is_mesh(self):
        from repro.sim.machine import MachineConfig

        assert isinstance(MachineConfig().mesh(), Mesh2D)
        assert not isinstance(MachineConfig().mesh(), Torus2D)

    def test_torus_option(self):
        from repro.sim.machine import MachineConfig

        cfg = MachineConfig(topology="torus")
        assert isinstance(cfg.mesh(), Torus2D)

    def test_unknown_topology_rejected(self):
        from repro.sim.machine import MachineConfig

        with pytest.raises(ValueError):
            MachineConfig(topology="hypercube").mesh()

    def test_torus_improves_miss_latency(self, stable_workload):
        from repro.sim.engine import simulate
        from repro.sim.machine import MachineConfig

        mesh_cfg = MachineConfig.small()
        torus_cfg = MachineConfig(
            l1=mesh_cfg.l1, l2=mesh_cfg.l2, topology="torus"
        )
        mesh_run = simulate(stable_workload, machine=mesh_cfg)
        torus_run = simulate(stable_workload, machine=torus_cfg)
        assert torus_run.avg_miss_latency < mesh_run.avg_miss_latency


class TestSeedOverride:
    def test_seed_changes_random_patterns(self):
        from repro.workloads.suite import load_benchmark

        a = load_benchmark("radiosity", scale=0.1, seed=1)
        b = load_benchmark("radiosity", scale=0.1, seed=99)
        assert a.events != b.events

    def test_seed_does_not_change_stable_patterns(self):
        from repro.workloads.suite import load_benchmark

        a = load_benchmark("x264", scale=0.1, seed=1)
        b = load_benchmark("x264", scale=0.1, seed=99)
        # x264 is all NEIGHBOR epochs: seed plays no role.
        assert a.events == b.events

    def test_default_seed_matches_spec(self):
        from repro.workloads.suite import load_benchmark

        a = load_benchmark("radiosity", scale=0.1)
        b = load_benchmark("radiosity", scale=0.1, seed=1)
        assert a.events == b.events
