"""Tests for the 2D mesh topology."""

import pytest

from repro.noc.topology import Mesh2D


class TestMesh2D:
    def test_coords_round_trip(self):
        mesh = Mesh2D(width=4, height=4)
        for node in range(mesh.num_nodes):
            x, y = mesh.coords(node)
            assert mesh.node_at(x, y) == node

    def test_hops_manhattan(self):
        mesh = Mesh2D(width=4, height=4)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3
        assert mesh.hops(0, 15) == 6  # corner to corner
        assert mesh.hops(5, 10) == 2

    def test_hops_symmetric(self):
        mesh = Mesh2D(width=4, height=4)
        for a in range(16):
            for b in range(16):
                assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_route_is_xy(self):
        mesh = Mesh2D(width=4, height=4)
        # 0 (0,0) -> 10 (2,2): X first to (2,0)=2, then Y to (2,2)=10.
        assert mesh.route(0, 10) == [0, 1, 2, 6, 10]

    def test_route_length_matches_hops(self):
        mesh = Mesh2D(width=4, height=4)
        for a in range(16):
            for b in range(16):
                assert len(mesh.route(a, b)) == mesh.hops(a, b) + 1

    def test_route_self(self):
        mesh = Mesh2D(width=4, height=4)
        assert mesh.route(7, 7) == [7]

    def test_average_hops_4x4(self):
        mesh = Mesh2D(width=4, height=4)
        # Known closed form for a 4x4 mesh: 8/3.
        assert mesh.average_hops() == pytest.approx(8 / 3)

    def test_out_of_range_node(self):
        mesh = Mesh2D(width=2, height=2)
        with pytest.raises(ValueError):
            mesh.hops(0, 4)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh2D(width=0, height=4)

    def test_non_square_mesh(self):
        mesh = Mesh2D(width=8, height=2)
        assert mesh.num_nodes == 16
        assert mesh.hops(0, 15) == 8
