"""Tests for the offered-load estimator and the transcript facility."""

import pytest

from repro.noc.congestion import (
    DEFAULT_LINK_BYTES_PER_CYCLE,
    LoadEstimate,
    directed_link_count,
    estimate_load,
)
from repro.noc.network import MessageClass, Network
from repro.noc.topology import Mesh2D


class TestLinkCount:
    def test_4x4_mesh(self):
        assert directed_link_count(Mesh2D(4, 4)) == 48

    def test_line_topology(self):
        assert directed_link_count(Mesh2D(4, 1)) == 6

    def test_single_node(self):
        assert directed_link_count(Mesh2D(1, 1)) == 0


class TestLoadEstimate:
    def test_offered_load_math(self):
        est = LoadEstimate(
            byte_links=4800, cycles=100, links=48, link_bytes_per_cycle=8
        )
        assert est.offered_load == pytest.approx(4800 / (100 * 48 * 8))
        assert not est.congested

    def test_congestion_threshold(self):
        est = LoadEstimate(
            byte_links=20_000, cycles=100, links=48, link_bytes_per_cycle=8
        )
        assert est.offered_load > 0.35
        assert est.congested

    def test_estimate_from_run(self, small_machine, stable_workload):
        from repro.sim.engine import simulate

        result = simulate(stable_workload, machine=small_machine)
        est = estimate_load(result, small_machine.mesh())
        assert 0.0 < est.offered_load < 1.0

    def test_paper_assumption_holds_even_for_broadcast(
        self, small_machine, stable_workload
    ):
        """Section 5.3's assumption: congestion stays low for both the
        prediction-augmented directory protocol and broadcast."""
        from repro.sim.engine import simulate

        for protocol in ("directory", "broadcast"):
            result = simulate(
                stable_workload, machine=small_machine, protocol=protocol
            )
            est = estimate_load(result, small_machine.mesh())
            assert not est.congested, protocol


class TestTranscript:
    def test_recording_captures_messages(self):
        net = Network(Mesh2D(4, 4))
        net.start_transcript()
        net.send(0, 5, MessageClass.CONTROL, "a")
        net.send(5, 0, MessageClass.DATA, "b")
        messages = net.stop_transcript()
        assert len(messages) == 2
        assert messages[0].src == 0 and messages[0].dst == 5
        assert messages[1].n_bytes == 72

    def test_not_recording_by_default(self):
        net = Network(Mesh2D(4, 4))
        net.send(0, 5, MessageClass.CONTROL, "a")
        assert net.stop_transcript() == []

    def test_drain_keeps_recording(self):
        net = Network(Mesh2D(4, 4))
        net.start_transcript()
        net.send(0, 1, MessageClass.CONTROL, "a")
        first = net.drain_transcript()
        net.send(0, 2, MessageClass.CONTROL, "a")
        second = net.stop_transcript()
        assert len(first) == 1 and len(second) == 1

    def test_predicted_read_message_sequence(self):
        """Audit the Section 4.5 flow: predicted requests + directory
        notification + nacks + data + off-path directory update."""
        from repro.cache.cache import CacheConfig
        from repro.cache.hierarchy import PrivateHierarchy
        from repro.coherence.directory import Directory
        from repro.coherence.protocol import DirectoryProtocol

        hiers = [
            PrivateHierarchy(
                c,
                l1=CacheConfig(size=256, assoc=1, line_size=64),
                l2=CacheConfig(size=2048, assoc=2, line_size=64),
            )
            for c in range(16)
        ]
        net = Network(Mesh2D(4, 4))
        proto = DirectoryProtocol(hiers, Directory(16), net)
        proto.write_miss(1, 32)

        net.start_transcript()
        proto.read_miss(0, 32, predicted={1, 5})
        messages = net.stop_transcript()
        home = proto.directory.home_of(32)

        # Predicted requests to nodes 1 and 5.
        pred_reqs = [m for m in messages if m.src == 0 and m.dst in (1, 5)
                     and m.msg is MessageClass.CONTROL]
        assert len(pred_reqs) == 2
        # Tagged request to the home directory.
        assert any(m.src == 0 and m.dst == home for m in messages)
        # Nack from the non-responder predicted node.
        assert any(m.src == 5 and m.dst == 0 for m in messages)
        # Data from the owner.
        assert any(m.src == 1 and m.dst == 0 and m.msg is MessageClass.DATA
                   for m in messages)
        # Off-critical-path sharing-state update to the directory.
        assert any(m.src == 1 and m.dst == home for m in messages)
