"""Quantum invariance: bit-identical counters at every quantum.

The scheduler quantum selects one of many valid fine-grain
interleavings, so for a fixed quantum all three engine loops must agree
bit-for-bit — including the vector path's cross-quantum window fusion,
which replays quantum breaks arithmetically instead of taking them.
These tests sweep the quantum from pathological (1 cycle: a scheduling
turn per event) through the default (400) to effectively-unbounded
(100000: whole epochs per turn), on a sharing-heavy and a sharing-free
workload, with numpy present and absent (the vector path must degrade
to the compiled loop, not diverge or raise).
"""

from __future__ import annotations

import warnings

import pytest

import repro.sim.engine as engine_mod
from repro.sim.engine import SimulationEngine
from repro.sim.machine import MachineConfig
from repro.workloads.base import OP_READ, OP_WRITE, Workload
from repro.workloads.generator import (
    BenchmarkSpec,
    EpochSpec,
    LockSpec,
    build_workload,
)
from repro.workloads.patterns import PatternKind

#: Pathological, sub-quantum, the default, and whole-epochs-per-turn.
QUANTA = (1, 100, 400, 100000)

PATHS = (
    ("interpreted", {"use_compiled": False, "use_vector": False}),
    ("compiled", {"use_compiled": True, "use_vector": False}),
    ("vector", {"use_vector": True}),
)


@pytest.fixture(scope="module")
def sharing_heavy():
    """Producer/consumer epochs: nearly every miss is a coherence
    transaction, so the vector path leans on the shared-run handler and
    the transaction memo rather than private batches."""
    spec = BenchmarkSpec(
        name="xq-sharing",
        epochs=(
            EpochSpec(
                pattern=PatternKind.NEIGHBOR,
                consume_blocks=8,
                produce_blocks=8,
                private_blocks=2,
                rereads=1,
                think=3,
            ),
            EpochSpec(
                pattern=PatternKind.STABLE,
                consume_blocks=6,
                produce_blocks=6,
                private_blocks=0,
                rereads=0,
                think=0,
            ),
        ),
        # Lock-protected migratory data: acquisition order — and with it
        # the coherence traffic — depends on the interleaving, which is
        # what makes this workload quantum-sensitive.
        locks=(LockSpec(n_sites=2, protected_blocks=2, think=5),),
        iterations=4,
    )
    return build_workload(spec, scale=1.0)


@pytest.fixture(scope="module")
def sharing_free():
    """Sole-toucher private streams: every segment is a fusible span,
    so cross-quantum windows form wherever the quantum permits."""
    streams = []
    for core in range(16):
        s = []
        for k in range(60):
            addr = 0x200000 + (core * 60 + k) * 64
            s.append((OP_WRITE if k % 4 == 0 else OP_READ,
                      addr, 0x30 + k % 5))
        streams.append(s)
    return Workload(name="xq-private", num_cores=16, events=streams)


def run_paths(workload, quantum, with_numpy, monkeypatch):
    if not with_numpy:
        # Simulate an install without the optional dependency: the
        # vector request must silently become a compiled run (the
        # once-per-process warning is pinned by TestNumpyFallback).
        monkeypatch.setattr(engine_mod, "_NUMPY_AVAILABLE", False)
        monkeypatch.setattr(engine_mod, "_NUMPY_WARNED", True)
    machine = MachineConfig(
        **{**MachineConfig.small().__dict__, "quantum": quantum}
    )
    payloads = {}
    for name, kw in PATHS:
        engine = SimulationEngine(
            workload, machine=machine, protocol="directory",
            predictor="SP", collect_epochs=True, **kw,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            payloads[name] = engine.run().to_dict()
    return payloads


def assert_identical(payloads):
    ref = payloads["interpreted"]
    for name in ("compiled", "vector"):
        diffs = {
            k: (ref.get(k), payloads[name].get(k))
            for k in set(ref) | set(payloads[name])
            if ref.get(k) != payloads[name].get(k)
        }
        assert not diffs, f"{name} vs interpreted: {diffs}"


@pytest.mark.parametrize("with_numpy", (True, False),
                         ids=("numpy", "no-numpy"))
@pytest.mark.parametrize("quantum", QUANTA)
class TestQuantumInvariance:
    def test_sharing_heavy(self, sharing_heavy, quantum, with_numpy,
                           monkeypatch):
        assert_identical(
            run_paths(sharing_heavy, quantum, with_numpy, monkeypatch)
        )

    def test_sharing_free(self, sharing_free, quantum, with_numpy,
                          monkeypatch):
        assert_identical(
            run_paths(sharing_free, quantum, with_numpy, monkeypatch)
        )


class TestQuantumChangesInterleaving:
    def test_quantum_is_a_real_knob(self, sharing_heavy):
        """Sanity for the invariance tests above: different quanta give
        different (each internally-consistent) interleavings, so the
        per-quantum identity checks are not vacuously comparing one
        schedule with itself."""
        engine_fine = SimulationEngine(
            sharing_heavy, machine=MachineConfig(
                **{**MachineConfig.small().__dict__, "quantum": 1}
            ),
            protocol="directory", predictor="SP", use_compiled=True,
        )
        engine_coarse = SimulationEngine(
            sharing_heavy, machine=MachineConfig(
                **{**MachineConfig.small().__dict__, "quantum": 100000}
            ),
            protocol="directory", predictor="SP", use_compiled=True,
        )
        fine = engine_fine.run().to_dict()
        coarse = engine_coarse.run().to_dict()
        assert fine != coarse
