"""Barrier release when participation shrinks mid-run."""

from repro.sim.engine import simulate
from repro.sync.points import SyncKind
from repro.workloads.base import OP_READ, OP_SYNC, OP_THINK, Workload

N = 16


class TestLateFinisherUnblocksBarrier:
    def test_slow_nonparticipant_finishing_releases_waiters(self, small_machine):
        """15 cores park at a barrier while core 0 (which has no barrier
        in its stream) is still working; when core 0 finally finishes,
        the barrier must release — not deadlock."""
        streams = [[] for _ in range(N)]
        # Core 0: lots of slow work, no barrier.
        streams[0] = [(OP_THINK, 10_000)] + [
            (OP_READ, 0x100000 + i * 64, 0x40) for i in range(20)
        ]
        # Everyone else: one quick access then the barrier.
        for core in range(1, N):
            streams[core] = [
                (OP_READ, 0x200000 + core * 64, 0x41),
                (OP_SYNC, SyncKind.BARRIER, 0x99, None),
                (OP_READ, 0x300000 + core * 64, 0x42),
            ]
        w = Workload(name="late-finisher", num_cores=N, events=streams)
        result = simulate(w, machine=small_machine)
        assert result.sync_points == 15
        assert result.accesses == w.memory_accesses()

    def test_two_barriers_with_shrinking_population(self, small_machine):
        """Core 0 participates in the first barrier only; the second
        barrier synchronizes the remaining 15."""
        streams = [[] for _ in range(N)]
        streams[0] = [(OP_SYNC, SyncKind.BARRIER, 0x90, None)]
        for core in range(1, N):
            streams[core] = [
                (OP_SYNC, SyncKind.BARRIER, 0x90, None),
                (OP_READ, 0x100000 + core * 64, 0x41),
                (OP_SYNC, SyncKind.BARRIER, 0x91, None),
            ]
        w = Workload(name="shrinking", num_cores=N, events=streams)
        result = simulate(w, machine=small_machine)
        assert result.sync_points == 16 + 15
