"""Tests for the machine configuration."""

from repro.sim.machine import MachineConfig


class TestMachineConfig:
    def test_table4_defaults(self):
        """The default machine is the paper's Table 4 configuration."""
        cfg = MachineConfig()
        assert cfg.num_cores == 16
        assert cfg.mesh_width == 4 and cfg.mesh_height == 4
        assert cfg.l1.size == 16 * 1024
        assert cfg.l1.assoc == 1
        assert cfg.l2.size == 1024 * 1024
        assert cfg.l2.assoc == 8
        assert cfg.l2.line_size == 64
        assert cfg.l1_latency == 2
        assert cfg.latencies.l2_tag == 2
        assert cfg.latencies.l2_data == 6
        assert cfg.latencies.memory == 150
        assert cfg.router_latency == 2

    def test_mesh_construction(self):
        mesh = MachineConfig().mesh()
        assert mesh.num_nodes == 16

    def test_small_machine_same_topology(self):
        cfg = MachineConfig.small()
        assert cfg.num_cores == 16
        assert cfg.l2.size < MachineConfig().l2.size
