"""Lock scheduling semantics: fairness and serialization."""

from repro.sim.engine import SimulationEngine, simulate
from repro.sync.points import SyncKind
from repro.workloads.base import OP_SYNC, OP_THINK, OP_WRITE, Workload

N = 16
LOCK = 0x8000


def cs_workload(rounds: int, think: int = 50) -> Workload:
    """Every core loops: acquire, write a shared block, release."""
    streams = [[] for _ in range(N)]
    for core in range(N):
        for r in range(rounds):
            streams[core].append((OP_SYNC, SyncKind.LOCK, 0x10, LOCK))
            streams[core].append((OP_THINK, think))
            streams[core].append((OP_WRITE, 0x4000, 0x20))
            streams[core].append((OP_SYNC, SyncKind.UNLOCK, 0x14, LOCK))
    return Workload(name="cs", num_cores=N, events=streams)


class TestLockSemantics:
    def test_every_core_completes_all_rounds(self, small_machine):
        result = simulate(cs_workload(rounds=4), machine=small_machine)
        # 4 rounds x (lock + unlock) per core.
        assert result.sync_points == N * 4 * 2

    def test_critical_sections_serialize(self, small_machine):
        """Total time must cover all critical sections back-to-back."""
        rounds, think = 3, 50
        result = simulate(
            cs_workload(rounds=rounds, think=think), machine=small_machine
        )
        # N cores x rounds sections, each at least `think` cycles long.
        assert result.cycles >= N * rounds * think

    def test_migratory_data_communicates(self, small_machine):
        result = simulate(cs_workload(rounds=3), machine=small_machine)
        # After the first holder, writes to the shared block must
        # invalidate/fetch from the previous holder (a consecutive
        # re-acquire by the same core write-hits instead).
        assert result.comm_misses >= N * 3 - 4

    def test_no_livelock_and_bounded_makespan(self, small_machine):
        """Every core completes its rounds and the makespan stays within
        a small constant of the serial lower bound."""
        rounds, think = 4, 50
        engine = SimulationEngine(
            cs_workload(rounds=rounds, think=think), machine=small_machine
        )
        result = engine.run()
        finish = sorted(result.core_cycles)
        serial_floor = N * rounds * think
        assert finish[-1] >= serial_floor          # sections serialized
        assert finish[-1] <= serial_floor * 4      # no livelock/blowup
        # Arrival-ordered handoff: even the first finisher sat through
        # a meaningful share of other cores' critical sections.
        assert finish[0] >= rounds * think * 4

    def test_uncontended_lock_is_cheap(self, small_machine):
        streams = [[] for _ in range(N)]
        streams[0] = [
            (OP_SYNC, SyncKind.LOCK, 0x10, LOCK),
            (OP_WRITE, 0x4000, 0x20),
            (OP_SYNC, SyncKind.UNLOCK, 0x14, LOCK),
        ]
        w = Workload(name="solo", num_cores=N, events=streams)
        result = simulate(w, machine=small_machine)
        # Two sync ops + one cold write miss; well under a microsecond.
        assert result.cycles < 500
