"""Vectorized batch engine: three-path equivalence on edge-case traces.

The vector path (:mod:`repro.sim.vector`) promises bit-identity with the
compiled and interpreted loops of :meth:`SimulationEngine.run`.  The
differential and fuzz harnesses certify that on suite and adversarial
workloads; these tests pin the segment-index edge cases those sweeps can
miss: zero-length THINK runs, single-core traces, ``quantum=1``, and a
trace whose final segment ends mid-epoch (no closing sync).
"""

from __future__ import annotations

import warnings

import pytest

import repro.sim.engine as engine_mod
from repro.sim.engine import SimulationEngine
from repro.sim.machine import MachineConfig
from repro.sync.points import SyncKind
from repro.workloads.base import OP_READ, OP_SYNC, OP_THINK, OP_WRITE, Workload

np = pytest.importorskip("numpy")

N = 16

#: The three loop configurations of SimulationEngine.run.
PATHS = (
    ("interpreted", {"use_compiled": False, "use_vector": False}),
    ("compiled", {"use_compiled": True, "use_vector": False}),
    ("vector", {"use_vector": True}),
)


def run_all_paths(workload, machine, *, protocol="directory",
                  predictor="SP", quantum=None):
    """Run a workload through all three engine loops; payloads by name."""
    if quantum is not None:
        machine = MachineConfig(
            **{**machine.__dict__, "quantum": quantum}
        )
    payloads = {}
    for name, kw in PATHS:
        engine = SimulationEngine(
            workload,
            machine=machine,
            protocol=protocol,
            predictor=predictor,
            collect_epochs=True,
            **kw,
        )
        payloads[name] = engine.run().to_dict()
    return payloads


def assert_identical(payloads):
    ref = payloads["interpreted"]
    for name in ("compiled", "vector"):
        diffs = {
            k: (ref.get(k), payloads[name].get(k))
            for k in set(ref) | set(payloads[name])
            if ref.get(k) != payloads[name].get(k)
        }
        assert not diffs, f"{name} vs interpreted: {diffs}"


def private_run_streams(n=N, blocks=40, base=0x100000):
    """Per-core private streams (sole-toucher, cold): batchable runs."""
    streams = []
    for core in range(n):
        s = []
        for k in range(blocks):
            addr = base + (core * blocks + k) * 64
            op = OP_WRITE if k % 3 == 0 else OP_READ
            s.append((op, addr, 0x40 + k % 7))
        streams.append(s)
    return streams


class TestZeroLengthThink:
    def test_zero_cycle_think_runs_between_private_events(
        self, small_machine
    ):
        streams = private_run_streams(blocks=12)
        for core in range(N):
            # Zero-length THINK events: the compiler folds them into
            # think runs whose cycle payload never advances the clock.
            enriched = []
            for ev in streams[core]:
                enriched.append((OP_THINK, 0))
                enriched.append(ev)
            enriched.append((OP_THINK, 0))
            streams[core] = enriched
        w = Workload(name="zero-think", num_cores=N, events=streams)
        assert_identical(run_all_paths(w, small_machine))

    def test_think_only_trace(self, small_machine):
        streams = [
            [(OP_THINK, 0), (OP_THINK, 13 * (core + 1)), (OP_THINK, 0)]
            for core in range(N)
        ]
        w = Workload(name="think-only", num_cores=N, events=streams)
        assert_identical(run_all_paths(w, small_machine))


class TestSingleCore:
    def test_single_core_private_trace(self):
        machine = MachineConfig(mesh_width=1, mesh_height=1)
        streams = private_run_streams(n=1, blocks=64)
        w = Workload(name="solo", num_cores=1, events=streams)
        # SP prediction needs >=2 cores; single-core runs unpredicted.
        assert_identical(run_all_paths(w, machine, predictor="none"))

    def test_single_core_mixed_trace(self):
        machine = MachineConfig(mesh_width=1, mesh_height=1)
        s = []
        for k in range(20):
            s.append((OP_READ, 0x4000 + k * 64, 0x40))
            if k % 5 == 0:
                s.append((OP_THINK, 7))
        # Rereads make later touches L1 hits (non-cold, unbatchable).
        s.extend((OP_READ, 0x4000, 0x41) for _ in range(4))
        w = Workload(name="solo-mixed", num_cores=1, events=[s])
        assert_identical(run_all_paths(w, machine, predictor="none"))


class TestQuantumOne:
    def test_quantum_one_private_runs(self, small_machine):
        streams = private_run_streams(blocks=24)
        w = Workload(name="q1", num_cores=N, events=streams)
        assert_identical(run_all_paths(w, small_machine, quantum=1))

    def test_quantum_one_with_barriers(self, small_machine):
        streams = private_run_streams(blocks=8)
        for core in range(N):
            streams[core].append((OP_SYNC, SyncKind.BARRIER, 0x99, None))
            streams[core].extend(private_run_streams(blocks=6)[core])
        w = Workload(name="q1-sync", num_cores=N, events=streams)
        assert_identical(run_all_paths(w, small_machine, quantum=1))


class TestFinalSegmentMidEpoch:
    def test_trace_ends_without_closing_sync(self, small_machine):
        """Final private run ends mid-epoch: no barrier closes it, so
        the last segment's events drain under the end-of-stream path."""
        streams = private_run_streams(blocks=10)
        for core in range(N):
            streams[core].insert(
                10, (OP_SYNC, SyncKind.BARRIER, 0x90, None)
            )
            # Tail after the barrier: an open epoch at trace end.
            streams[core].extend(
                (OP_READ, 0x900000 + (core * 64 + k) * 64 * N, 0x50)
                for k in range(5)
            )
        w = Workload(name="mid-epoch", num_cores=N, events=streams)
        assert_identical(run_all_paths(w, small_machine))

    def test_uneven_tails(self, small_machine):
        """Cores end at different clocks; last finisher is all-private."""
        streams = private_run_streams(blocks=6)
        streams[5] = private_run_streams(blocks=120)[5]
        w = Workload(name="uneven-tail", num_cores=N, events=streams)
        assert_identical(run_all_paths(w, small_machine))


class TestPredictorsAndProtocols:
    @pytest.mark.parametrize("protocol,predictor", [
        ("broadcast", "none"),
        ("multicast", "UNI"),
        ("limited", "ORACLE"),
        ("directory", "ADDR"),   # batch hooks: keyed peek/commit plans
    ])
    def test_paths_agree_across_backends(
        self, small_machine, protocol, predictor
    ):
        streams = private_run_streams(blocks=16)
        for core in range(N):
            streams[core].insert(8, (OP_SYNC, SyncKind.BARRIER, 0x91, None))
        w = Workload(name=f"grid-{protocol}", num_cores=N, events=streams)
        assert_identical(run_all_paths(
            w, small_machine, protocol=protocol, predictor=predictor
        ))


class TestNumpyFallback:
    def test_missing_numpy_degrades_with_single_warning(
        self, small_machine, monkeypatch
    ):
        """Without numpy the engine must warn once and take the compiled
        path — never raise ImportError."""
        monkeypatch.setattr(engine_mod, "_NUMPY_AVAILABLE", False)
        monkeypatch.setattr(engine_mod, "_NUMPY_WARNED", False)
        streams = private_run_streams(blocks=8)
        w = Workload(name="no-numpy", num_cores=N, events=streams)

        engine = SimulationEngine(
            w, machine=small_machine, use_vector=True
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = engine.run()
        assert result.accesses == 8 * N
        relevant = [w_ for w_ in caught
                    if "numpy" in str(w_.message).lower()]
        assert len(relevant) == 1

        # Second run: the warning is once-per-process.
        engine2 = SimulationEngine(
            w, machine=small_machine, use_vector=True
        )
        with warnings.catch_warnings(record=True) as caught2:
            warnings.simplefilter("always")
            engine2.run()
        assert not [w_ for w_ in caught2
                    if "numpy" in str(w_.message).lower()]

    def test_auto_mode_without_numpy_takes_compiled_path(
        self, small_machine, monkeypatch
    ):
        monkeypatch.setattr(engine_mod, "_NUMPY_AVAILABLE", False)
        monkeypatch.setattr(engine_mod, "_NUMPY_WARNED", False)
        streams = private_run_streams(blocks=8)
        w = Workload(name="auto-no-numpy", num_cores=N, events=streams)
        engine = SimulationEngine(w, machine=small_machine)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert engine._vector_enabled() is False
            result = engine.run()
        assert result.accesses == 8 * N
