"""Engine edge cases: uneven streams, think-only cores, tiny machines."""

import pytest

from repro.sim.engine import SimulationEngine, simulate
from repro.sync.points import SyncKind
from repro.workloads.base import OP_READ, OP_SYNC, OP_THINK, OP_WRITE, Workload

N = 16


class TestUnevenStreams:
    def test_core_with_empty_stream_finishes_immediately(self, small_machine):
        streams = [[] for _ in range(N)]
        for core in range(1, N):
            streams[core] = [
                (OP_READ, 0x1000 * core, 0x40),
                (OP_SYNC, SyncKind.BARRIER, 0x99, None),
            ]
        w = Workload(name="uneven", num_cores=N, events=streams)
        result = simulate(w, machine=small_machine)
        # The 15 participating cores synchronize among themselves.
        assert result.sync_points == 15
        assert result.core_cycles[0] == 0

    def test_think_only_workload(self, small_machine):
        streams = [[(OP_THINK, 100 * (core + 1))] for core in range(N)]
        w = Workload(name="think", num_cores=N, events=streams)
        result = simulate(w, machine=small_machine)
        assert result.misses == 0
        assert result.cycles == 100 * N
        assert result.core_cycles[0] == 100

    def test_single_active_core(self, small_machine):
        streams = [[] for _ in range(N)]
        streams[3] = [(OP_WRITE, 0x2000, 0x44), (OP_READ, 0x2000, 0x48)]
        w = Workload(name="solo", num_cores=N, events=streams)
        result = simulate(w, machine=small_machine)
        assert result.misses == 1   # the read hits after the write fill
        assert result.l1_hits == 1

    def test_wakeup_sync_is_nonblocking_epoch_boundary(self, small_machine):
        streams = [[] for _ in range(N)]
        streams[0] = [
            (OP_READ, 0x1000, 0x40),
            (OP_SYNC, SyncKind.WAKEUP, 0x50, None),
            (OP_READ, 0x2000, 0x41),
        ]
        w = Workload(name="wakeup", num_cores=N, events=streams)
        result = simulate(w, machine=small_machine, collect_epochs=True)
        assert result.sync_points == 1
        # The wakeup closed the first epoch without waiting for anyone.
        assert result.cycles > 0


class TestQuantumScheduling:
    def test_quantum_does_not_change_totals(self, small_machine, stable_workload):
        """The scheduling quantum is a performance knob: totals must not
        depend on it."""
        import repro.sim.engine as engine_mod

        baseline = simulate(stable_workload, machine=small_machine)
        original = engine_mod._QUANTUM
        try:
            engine_mod._QUANTUM = 1
            fine = simulate(stable_workload, machine=small_machine)
        finally:
            engine_mod._QUANTUM = original
        assert fine.misses == baseline.misses
        assert fine.accesses == baseline.accesses
        assert fine.sync_points == baseline.sync_points

    def test_interleaved_sharing_identical_blocks(self, small_machine):
        """Two cores ping-ponging one block: each write invalidates the
        other's copy, alternating ownership."""
        streams = [[] for _ in range(N)]
        for core in (0, 1):
            for r in range(6):
                streams[core].append((OP_WRITE, 0x3000, 0x40 + core))
                streams[core].append(
                    (OP_SYNC, SyncKind.BARRIER, 0x90 + r, None)
                )
        for core in range(2, N):
            for r in range(6):
                streams[core].append(
                    (OP_SYNC, SyncKind.BARRIER, 0x90 + r, None)
                )
        w = Workload(name="pingpong-block", num_cores=N, events=streams)
        result = simulate(w, machine=small_machine)
        # Rounds after the first are communicating ownership transfers.
        assert result.comm_misses >= 8


class TestResultIntegrity:
    def test_dirty_data_survives_eviction_roundtrip(self, small_machine):
        """Write, force eviction by conflict, read back: the directory
        must route the refill from memory (writeback happened)."""
        sets = None
        engine = SimulationEngine(
            Workload(name="tmp", num_cores=N), machine=small_machine
        )
        sets = engine.hierarchies[0].l2.config.num_sets
        assoc = engine.hierarchies[0].l2.config.assoc
        line = 64
        conflicting = [(1 + k * sets) * line for k in range(assoc + 1)]

        streams = [[] for _ in range(N)]
        streams[0] = [(OP_WRITE, addr, 0x40) for addr in conflicting]
        streams[0].append((OP_READ, conflicting[0], 0x41))
        w = Workload(name="evict", num_cores=N, events=streams)
        result = simulate(w, machine=small_machine, collect_epochs=False)
        # The read-back is a fresh off-chip miss, not a protocol error.
        assert result.misses == len(conflicting) + 1
        assert result.offchip_misses == result.misses
