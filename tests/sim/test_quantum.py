"""Scheduling-quantum configuration and invariance tests.

The quantum bounds how far one core may run ahead of the slowest core
between scheduling turns.  For workloads with *no* cross-core sharing
and no synchronization, the interleaving cannot affect any counter, so
every quantum must produce the bit-identical result — a scoped
invariance that exercises the budget-break plumbing in both engine
loops.  (With sharing, the quantum is *not* result-invariant: it decides
interleaving at the coherence protocol, which is exactly why the
compiled fast path must reproduce the default schedule event-for-event.)
"""

from dataclasses import replace

import pytest

from repro.check.lockstep import machine_for_cores
from repro.sim import engine as engine_mod
from repro.sim.engine import SimulationEngine
from repro.workloads.base import OP_READ, OP_THINK, OP_WRITE, Workload


def private_workload(num_cores: int = 4) -> Workload:
    """Disjoint per-core block streams, no sync events."""
    streams = []
    for core in range(num_cores):
        base = (core + 1) * 0x10000
        stream = []
        for i in range(40):
            stream.append((OP_READ, base + 64 * i, 0x400))
            stream.append((OP_THINK, 3 + (i % 5)))
            stream.append((OP_WRITE, base + 64 * (i % 7), 0x404))
        streams.append(stream)
    return Workload(name="private", num_cores=num_cores, events=streams)


def run(workload, machine, use_compiled, **kw):
    return SimulationEngine(
        workload,
        machine=machine,
        predictor="SP",
        collect_epochs=True,
        use_compiled=use_compiled,
        **kw,
    ).run().to_dict()


class TestQuantumInvariance:
    @pytest.mark.parametrize("use_compiled", [False, True])
    def test_no_sharing_means_no_quantum_effect(self, use_compiled):
        workload = private_workload()
        base_machine = machine_for_cores(workload.num_cores)
        reference = run(workload, base_machine, use_compiled)
        for quantum in (1, 17, 400, 10**9):
            machine = replace(base_machine, quantum=quantum)
            assert run(workload, machine, use_compiled) == reference, (
                f"quantum={quantum} changed a counter on a "
                f"sharing-free workload"
            )

    def test_compiled_matches_interpreted_at_odd_quanta(self):
        workload = private_workload()
        for quantum in (1, 13, 10**9):
            machine = replace(
                machine_for_cores(workload.num_cores), quantum=quantum
            )
            assert run(workload, machine, True) == \
                run(workload, machine, False)


class TestQuantumConfiguration:
    def engine(self, machine=None):
        workload = private_workload()
        return SimulationEngine(
            workload,
            machine=machine or machine_for_cores(workload.num_cores),
        )

    def test_default_is_module_constant(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUANTUM", raising=False)
        assert self.engine()._effective_quantum() == engine_mod._QUANTUM

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUANTUM", "123")
        assert self.engine()._effective_quantum() == 123

    def test_machine_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUANTUM", "123")
        machine = replace(machine_for_cores(4), quantum=77)
        assert self.engine(machine)._effective_quantum() == 77

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUANTUM", "fast")
        with pytest.raises(ValueError, match="REPRO_QUANTUM"):
            self.engine()._effective_quantum()

    def test_negative_quantum_rejected(self):
        machine = replace(machine_for_cores(4), quantum=-1)
        with pytest.raises(ValueError, match="non-negative"):
            self.engine(machine)._effective_quantum()

    def test_legacy_module_constant_still_honored(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUANTUM", raising=False)
        monkeypatch.setattr(engine_mod, "_QUANTUM", 55)
        assert self.engine()._effective_quantum() == 55
