"""Tests for the per-miss latency histogram."""

import pytest

from repro.core.predictor import SPPredictor
from repro.sim.engine import simulate
from repro.sim.results import SimulationResult


class TestHistogramCollection:
    def test_histogram_counts_every_miss(self, stable_workload, small_machine):
        r = simulate(stable_workload, machine=small_machine)
        assert sum(r.latency_histogram.values()) == r.misses

    def test_offchip_misses_land_in_high_buckets(self, stable_workload, small_machine):
        r = simulate(stable_workload, machine=small_machine)
        # Memory latency is 150 cycles: off-chip misses exceed 128.
        high = sum(
            count for bound, count in r.latency_histogram.items()
            if bound > 128
        )
        assert high >= r.offchip_misses

    def test_prediction_shifts_mass_downwards(self, small_machine):
        from repro.workloads.generator import build_workload
        from repro.workloads.patterns import PatternKind
        from tests.conftest import make_spec

        w = build_workload(
            make_spec(PatternKind.STABLE, epochs=2, iterations=8)
        )
        base = simulate(w, machine=small_machine)
        sp = simulate(w, machine=small_machine, predictor=SPPredictor(16))

        def low_mass(result):
            total = sum(result.latency_histogram.values())
            low = sum(c for b, c in result.latency_histogram.items() if b <= 32)
            return low / total

        assert low_mass(sp) > low_mass(base)


class TestPercentile:
    def _result(self, histogram):
        r = SimulationResult(
            workload="w", protocol="directory", predictor="none",
            num_cores=16,
        )
        r.latency_histogram = histogram
        return r

    def test_median_bucket(self):
        r = self._result({32: 50, 64: 30, 256: 20})
        assert r.latency_percentile(0.5) == 32
        assert r.latency_percentile(0.8) == 64
        assert r.latency_percentile(1.0) == 256

    def test_empty_histogram(self):
        assert self._result({}).latency_percentile(0.5) == 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            self._result({32: 1}).latency_percentile(0.0)
