"""Tests for result metrics."""

import json

from repro.noc.network import NetworkStats
from repro.predictors.base import PredictionSource
from repro.sim.results import EpochRecord, SimulationResult
from repro.sync.points import SyncKind


def make_result(**kw) -> SimulationResult:
    base = dict(workload="w", protocol="directory", predictor="SP", num_cores=4)
    base.update(kw)
    return SimulationResult(**base)


class TestDerivedMetrics:
    def test_misses_sums_kinds(self):
        r = make_result(read_misses=3, write_misses=2, upgrade_misses=1)
        assert r.misses == 6

    def test_comm_ratio(self):
        r = make_result(read_misses=10, comm_misses=4)
        assert r.comm_ratio == 0.4

    def test_zero_division_guards(self):
        r = make_result()
        assert r.comm_ratio == 0.0
        assert r.avg_miss_latency == 0.0
        assert r.accuracy == 0.0
        assert r.avg_actual_targets == 0.0
        assert r.avg_predicted_targets == 0.0
        assert r.bytes_per_miss() == 0.0

    def test_accuracy_over_comm_misses(self):
        r = make_result(read_misses=20, comm_misses=10, pred_correct=7)
        assert r.accuracy == 0.7

    def test_accuracy_from_source(self):
        r = make_result(
            comm_misses=10,
            correct_by_source={PredictionSource.HISTORY: 5},
        )
        assert r.accuracy_from(PredictionSource.HISTORY) == 0.5
        assert r.accuracy_from(PredictionSource.LOCK) == 0.0

    def test_indirection_ratio(self):
        r = make_result(read_misses=10, indirections=3)
        assert r.indirection_ratio == 0.3

    def test_set_size_averages(self):
        r = make_result(
            comm_misses=4, actual_target_sum=6,
            pred_attempted=2, predicted_target_sum=5,
        )
        assert r.avg_actual_targets == 1.5
        assert r.avg_predicted_targets == 2.5

    def test_summary_keys(self):
        summary = make_result().summary()
        assert {"workload", "protocol", "predictor", "cycles"} <= set(summary)


class TestEpochRecord:
    def test_volume_sums_targets(self):
        rec = EpochRecord(
            core=0, key=("pc", 1), kind=SyncKind.BARRIER, instance=1,
            volume_by_target=(0, 3, 2, 0), misses=7, comm_misses=5,
        )
        assert rec.volume == 5

    def test_round_trip(self):
        rec = EpochRecord(
            core=2, key=(17, 3), kind=SyncKind.LOCK, instance=4,
            volume_by_target=(1, 0, 0, 6), misses=9, comm_misses=7,
        )
        payload = json.loads(json.dumps(rec.to_dict()))
        restored = EpochRecord.from_dict(payload)
        assert restored == rec
        assert restored.kind is SyncKind.LOCK
        assert isinstance(restored.key, tuple)
        assert isinstance(restored.volume_by_target, tuple)


def make_full_result() -> SimulationResult:
    """A synthetic result exercising every non-scalar field."""
    r = make_result(
        cycles=1234,
        core_cycles=[1234, 1200, 1100, 900],
        accesses=500, l1_hits=300, l2_hits=100,
        read_misses=60, write_misses=30, upgrade_misses=10,
        comm_misses=40, offchip_misses=20,
        miss_latency_sum=9000, indirections=12,
        pred_attempted=35, pred_on_comm=30, pred_on_noncomm=5,
        pred_correct=25, pred_incorrect=10,
        correct_by_source={
            PredictionSource.HISTORY: 20,
            PredictionSource.LOCK: 5,
        },
        ideal_correct=33,
        actual_target_sum=55, predicted_target_sum=70,
        snoop_lookups=17, sync_points=8, dynamic_epochs=6,
        latency_histogram={16: 5, 64: 30, 256: 40, 1 << 30: 25},
        epoch_records=[
            EpochRecord(
                core=0, key=("pc", 1), kind=SyncKind.BARRIER, instance=0,
                volume_by_target=(0, 3, 2, 0), misses=7, comm_misses=5,
            ),
            EpochRecord(
                core=1, key=(42, 0), kind=SyncKind.UNLOCK, instance=2,
                volume_by_target=(4, 0, 1, 0), misses=6, comm_misses=5,
            ),
        ],
        whole_run_volume=[[0, 1, 2, 3], [4, 0, 5, 6], [0] * 4, [7, 8, 9, 0]],
        pc_volume={(0, 101): [0, 2, 1, 0], (3, 202): [5, 0, 0, 1]},
    )
    r.network = NetworkStats(
        messages=400, bytes_total=8000, byte_links=16000, byte_routers=24000,
        bytes_by_category={"req": 3000, "data": 4000, "pred_comm": 1000},
    )
    return r


class TestSerialization:
    def test_round_trip_is_exact(self):
        original = make_full_result()
        restored = SimulationResult.from_dict(original.to_dict())
        assert restored == original

    def test_survives_json_encoding(self):
        # The disk cache and the pool workers both push the payload
        # through json; tuple/enum keys must come back intact.
        original = make_full_result()
        payload = json.loads(json.dumps(original.to_dict()))
        restored = SimulationResult.from_dict(payload)
        assert restored == original
        assert set(restored.pc_volume) == {(0, 101), (3, 202)}
        assert restored.latency_histogram[1 << 30] == 25
        assert restored.correct_by_source[PredictionSource.HISTORY] == 20
        assert restored.epoch_records[1].kind is SyncKind.UNLOCK

    def test_derived_metrics_survive(self):
        restored = SimulationResult.from_dict(make_full_result().to_dict())
        original = make_full_result()
        assert restored.misses == original.misses
        assert restored.comm_ratio == original.comm_ratio
        assert restored.accuracy == original.accuracy
        assert restored.latency_percentile(0.5) == original.latency_percentile(0.5)
        assert restored.bytes_per_miss() == original.bytes_per_miss()
        assert restored.prediction_bytes() == original.prediction_bytes()

    def test_empty_result_round_trips(self):
        original = make_result()
        assert SimulationResult.from_dict(original.to_dict()) == original

    def test_real_run_round_trips(self, stable_workload, small_machine):
        from repro.sim.engine import simulate

        original = simulate(
            stable_workload, machine=small_machine, predictor="SP",
            collect_epochs=True,
        )
        payload = json.loads(json.dumps(original.to_dict()))
        assert SimulationResult.from_dict(payload) == original
