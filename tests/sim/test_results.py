"""Tests for result metrics."""

from repro.predictors.base import PredictionSource
from repro.sim.results import EpochRecord, SimulationResult
from repro.sync.points import SyncKind


def make_result(**kw) -> SimulationResult:
    base = dict(workload="w", protocol="directory", predictor="SP", num_cores=4)
    base.update(kw)
    return SimulationResult(**base)


class TestDerivedMetrics:
    def test_misses_sums_kinds(self):
        r = make_result(read_misses=3, write_misses=2, upgrade_misses=1)
        assert r.misses == 6

    def test_comm_ratio(self):
        r = make_result(read_misses=10, comm_misses=4)
        assert r.comm_ratio == 0.4

    def test_zero_division_guards(self):
        r = make_result()
        assert r.comm_ratio == 0.0
        assert r.avg_miss_latency == 0.0
        assert r.accuracy == 0.0
        assert r.avg_actual_targets == 0.0
        assert r.avg_predicted_targets == 0.0
        assert r.bytes_per_miss() == 0.0

    def test_accuracy_over_comm_misses(self):
        r = make_result(read_misses=20, comm_misses=10, pred_correct=7)
        assert r.accuracy == 0.7

    def test_accuracy_from_source(self):
        r = make_result(
            comm_misses=10,
            correct_by_source={PredictionSource.HISTORY: 5},
        )
        assert r.accuracy_from(PredictionSource.HISTORY) == 0.5
        assert r.accuracy_from(PredictionSource.LOCK) == 0.0

    def test_indirection_ratio(self):
        r = make_result(read_misses=10, indirections=3)
        assert r.indirection_ratio == 0.3

    def test_set_size_averages(self):
        r = make_result(
            comm_misses=4, actual_target_sum=6,
            pred_attempted=2, predicted_target_sum=5,
        )
        assert r.avg_actual_targets == 1.5
        assert r.avg_predicted_targets == 2.5

    def test_summary_keys(self):
        summary = make_result().summary()
        assert {"workload", "protocol", "predictor", "cycles"} <= set(summary)


class TestEpochRecord:
    def test_volume_sums_targets(self):
        rec = EpochRecord(
            core=0, key=("pc", 1), kind=SyncKind.BARRIER, instance=1,
            volume_by_target=(0, 3, 2, 0), misses=7, comm_misses=5,
        )
        assert rec.volume == 5
