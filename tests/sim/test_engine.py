"""Tests for the trace-driven simulation engine."""

import pytest

from repro.core.predictor import SPPredictor
from repro.predictors.oracle import OraclePredictor
from repro.sim.engine import SimulationEngine, simulate
from repro.sim.machine import MachineConfig
from repro.sync.points import SyncKind
from repro.workloads.base import OP_SYNC, Workload
from repro.workloads.generator import build_workload
from repro.workloads.patterns import PatternKind
from tests.conftest import make_spec


class TestBasicExecution:
    def test_empty_workload_completes(self, small_machine):
        w = Workload(name="empty", num_cores=16)
        result = simulate(w, machine=small_machine)
        assert result.cycles == 0
        assert result.misses == 0

    def test_core_count_mismatch_rejected(self, small_machine):
        w = Workload(name="w", num_cores=4)
        with pytest.raises(ValueError):
            simulate(w, machine=small_machine)

    def test_unknown_protocol_rejected(self, stable_workload, small_machine):
        with pytest.raises(ValueError):
            SimulationEngine(stable_workload, small_machine, protocol="bus")

    def test_deterministic_runs(self, stable_workload, small_machine):
        a = simulate(stable_workload, machine=small_machine)
        b = simulate(stable_workload, machine=small_machine)
        assert a.cycles == b.cycles
        assert a.miss_latency_sum == b.miss_latency_sum
        assert a.network.bytes_total == b.network.bytes_total

    def test_all_accesses_processed(self, stable_workload, small_machine):
        result = simulate(stable_workload, machine=small_machine)
        assert result.accesses == stable_workload.memory_accesses()
        assert result.sync_points == stable_workload.sync_points()

    def test_miss_plus_hit_accounting(self, stable_workload, small_machine):
        r = simulate(stable_workload, machine=small_machine)
        assert r.l1_hits + r.l2_hits + r.misses == r.accesses

    def test_execution_time_positive(self, stable_workload, small_machine):
        r = simulate(stable_workload, machine=small_machine)
        assert r.cycles > 0
        assert len(r.core_cycles) == 16
        assert max(r.core_cycles) == r.cycles


class TestBarriers:
    def test_barrier_aligns_clocks(self, small_machine):
        """After each barrier release, waiting cores resume together."""
        spec = make_spec(PatternKind.STABLE, epochs=1, iterations=2)
        w = build_workload(spec)
        r = simulate(w, machine=small_machine)
        # All cores executed identical structures: clocks end close.
        spread = max(r.core_cycles) - min(r.core_cycles)
        assert spread < max(r.core_cycles) * 0.5

    def test_barrier_mismatch_detected(self, small_machine):
        streams = [[] for _ in range(16)]
        for core in range(16):
            pc = 100 if core < 15 else 200  # core 15 diverges
            streams[core].append((OP_SYNC, SyncKind.BARRIER, pc, None))
        w = Workload(name="bad", num_cores=16, events=streams)
        with pytest.raises(RuntimeError, match="barrier mismatch"):
            simulate(w, machine=small_machine)


class TestLocks:
    def test_lock_serialization(self, lock_workload, small_machine):
        result = simulate(lock_workload, machine=small_machine)
        assert result.cycles > 0  # completed without deadlock

    def test_unlock_without_hold_detected(self, small_machine):
        streams = [[] for _ in range(16)]
        streams[0].append((OP_SYNC, SyncKind.UNLOCK, 1, 0x80))
        w = Workload(name="bad", num_cores=16, events=streams)
        with pytest.raises(RuntimeError, match="unlocked"):
            simulate(w, machine=small_machine)

    def test_critical_sections_are_migratory(self, lock_workload, small_machine):
        """Lock-protected data moves core to core: communicating misses."""
        result = simulate(lock_workload, machine=small_machine)
        assert result.comm_misses > 0


class TestPredictionPlumbing:
    def test_sp_predictor_improves_latency(self, small_machine):
        spec = make_spec(PatternKind.STABLE, epochs=2, iterations=8)
        w = build_workload(spec)
        base = simulate(w, machine=small_machine)
        sp = simulate(w, machine=small_machine, predictor=SPPredictor(16))
        assert sp.pred_correct > 0
        assert sp.avg_miss_latency < base.avg_miss_latency

    def test_oracle_avoids_all_indirection_on_comm(self, small_machine):
        spec = make_spec(PatternKind.RANDOM, epochs=2, iterations=6)
        w = build_workload(spec)
        engine = SimulationEngine(w, machine=small_machine)
        engine.predictor = OraclePredictor(engine.directory)
        r = engine.run()
        assert r.pred_correct == r.comm_misses
        assert r.pred_incorrect == 0

    def test_prediction_does_not_change_sharing_outcomes(self, small_machine):
        """Prediction accelerates; it must not alter the miss stream."""
        spec = make_spec(PatternKind.STRIDE, epochs=2, iterations=8)
        w = build_workload(spec)
        base = simulate(w, machine=small_machine)
        sp = simulate(w, machine=small_machine, predictor=SPPredictor(16))
        assert sp.comm_misses == base.comm_misses
        assert sp.misses == base.misses

    def test_ideal_accuracy_bounds_history_prediction(self, small_machine):
        from repro.predictors.base import PredictionSource

        spec = make_spec(PatternKind.STABLE, epochs=2, iterations=8)
        w = build_workload(spec)
        sp = simulate(w, machine=small_machine, predictor=SPPredictor(16))
        history_correct = sp.correct_by_source.get(PredictionSource.HISTORY, 0)
        assert history_correct > 0
        assert sp.ideal_correct >= history_correct
        assert sp.ideal_accuracy <= 1.0


class TestEpochCollection:
    def test_epoch_records_collected_on_demand(self, stable_workload, small_machine):
        off = simulate(stable_workload, machine=small_machine)
        on = simulate(
            stable_workload, machine=small_machine, collect_epochs=True
        )
        assert off.epoch_records == []
        assert len(on.epoch_records) > 0

    def test_dynamic_epoch_count_matches_records(self, stable_workload, small_machine):
        r = simulate(stable_workload, machine=small_machine, collect_epochs=True)
        assert r.dynamic_epochs == len(r.epoch_records)

    def test_pc_volume_only_when_collecting(self, stable_workload, small_machine):
        r = simulate(stable_workload, machine=small_machine)
        assert r.pc_volume == {}

    def test_whole_run_volume_always_available(self, stable_workload, small_machine):
        r = simulate(stable_workload, machine=small_machine)
        total = sum(sum(row) for row in r.whole_run_volume)
        assert total > 0


class TestBroadcastEngine:
    def test_broadcast_runs_and_uses_more_bytes(self, stable_workload, small_machine):
        d = simulate(stable_workload, machine=small_machine)
        b = simulate(stable_workload, machine=small_machine, protocol="broadcast")
        assert b.network.bytes_total > d.network.bytes_total
        assert b.snoop_lookups > d.snoop_lookups
        assert b.indirections == 0
