"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestListCommand:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fmm", "x264", "streamcluster"):
            assert name in out


class TestSimulateCommand:
    def test_baseline_run(self, capsys):
        assert main(["simulate", "x264", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "L2 misses" in out
        assert "predictor=none" in out

    def test_sp_run_reports_accuracy(self, capsys):
        assert main(
            ["simulate", "x264", "--scale", "0.1", "--predictor", "SP"]
        ) == 0
        out = capsys.readouterr().out
        assert "prediction accuracy" in out

    def test_region_filter_flag(self, capsys):
        assert main(
            ["simulate", "x264", "--scale", "0.1", "--predictor", "SP",
             "--region-filter"]
        ) == 0
        assert "SP+RF" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(
            ["simulate", "x264", "--scale", "0.1", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "x264"
        assert payload["misses"] > 0

    def test_broadcast_protocol(self, capsys):
        assert main(
            ["simulate", "x264", "--scale", "0.1", "--protocol", "broadcast"]
        ) == 0
        assert "protocol=broadcast" in capsys.readouterr().out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["simulate", "not-a-benchmark"])


class TestCompareCommand:
    def test_compares_predictors(self, capsys):
        assert main(
            ["compare", "x264", "--scale", "0.1",
             "--predictors", "SP", "UNI"]
        ) == 0
        out = capsys.readouterr().out
        assert "SP" in out and "UNI" in out
        assert "indirection" in out

    def test_owner2_available(self, capsys):
        assert main(
            ["compare", "x264", "--scale", "0.1",
             "--predictors", "OWNER2"]
        ) == 0
        assert "OWNER2" in capsys.readouterr().out


class TestTraceCommands:
    def test_dump_then_simulate_trace(self, tmp_path, capsys):
        trace = tmp_path / "x264.trace"
        assert main(
            ["dump-trace", "x264", "-o", str(trace), "--scale", "0.1"]
        ) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["simulate", str(trace), "--trace"]) == 0
        assert "workload x264" in capsys.readouterr().out


class TestTraceErrorPaths:
    def test_info_missing_file_one_line_error(self, tmp_path, capsys):
        assert main(["trace", "info", str(tmp_path / "nope.rtrace")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1  # no traceback

    def test_info_corrupt_file_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.rtrace"
        bad.write_bytes(b"RTRC garbage that is not a v2 trace")
        assert main(["trace", "info", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_export_missing_file_one_line_error(self, tmp_path, capsys):
        out = tmp_path / "out.trace"
        assert main(
            ["trace", "export", str(tmp_path / "nope.rtrace"),
             "-o", str(out)]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert not out.exists()


class TestObsCommands:
    def test_trace_report_export_pipeline(self, tmp_path, capsys):
        events = tmp_path / "x264.events.json"
        assert main(
            ["obs", "trace", "x264", "--scale", "0.1", "-o", str(events)]
        ) == 0
        assert events.exists()
        capsys.readouterr()

        assert main(["obs", "report", str(events), "--core", "0"]) == 0
        out = capsys.readouterr().out
        assert "prediction accuracy over run" in out
        assert "core 0:" in out

        perfetto = tmp_path / "x264.perfetto.json"
        assert main(
            ["obs", "export", str(events), "-o", str(perfetto)]
        ) == 0
        trace = json.loads(perfetto.read_text())
        assert trace["traceEvents"]

    def test_report_simulates_benchmark_on_the_fly(self, capsys):
        assert main(["obs", "report", "x264", "--scale", "0.1"]) == 0
        assert "x264 / directory / SP" in capsys.readouterr().out

    def test_report_missing_events_file_one_line_error(self, capsys):
        assert main(["obs", "report", "missing.events.json"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")

    def test_export_corrupt_events_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(
            ["obs", "export", str(bad), "-o", str(tmp_path / "o.json")]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "bad.json" in err

    def test_overhead_gate_passes(self, capsys):
        # Loose --max-ratio: this asserts the gate's *mechanics*
        # (identical counters, valid events, exit code plumbing);
        # wall-clock on a loaded single-CPU test runner is jitter, and
        # the strict 1.05 timing criterion runs in tools/check.sh.
        assert main(
            ["obs", "overhead", "--workload", "x264", "--scale", "0.1",
             "--reps", "3", "--max-ratio", "2.0"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["counters_identical"] is True
        assert payload["event_errors"] == []

    def test_simulate_with_events_metrics_profile(self, tmp_path, capsys):
        events = tmp_path / "ev.json"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["simulate", "x264", "--scale", "0.1", "--predictor", "SP",
             "--json", "--events", str(events),
             "--metrics", str(metrics), "--profile"]
        ) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # --json stdout stays machine-readable
        assert events.exists() and metrics.exists()
        assert "cumulative" in captured.err  # cProfile listing on stderr
