"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestListCommand:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fmm", "x264", "streamcluster"):
            assert name in out


class TestSimulateCommand:
    def test_baseline_run(self, capsys):
        assert main(["simulate", "x264", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "L2 misses" in out
        assert "predictor=none" in out

    def test_sp_run_reports_accuracy(self, capsys):
        assert main(
            ["simulate", "x264", "--scale", "0.1", "--predictor", "SP"]
        ) == 0
        out = capsys.readouterr().out
        assert "prediction accuracy" in out

    def test_region_filter_flag(self, capsys):
        assert main(
            ["simulate", "x264", "--scale", "0.1", "--predictor", "SP",
             "--region-filter"]
        ) == 0
        assert "SP+RF" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(
            ["simulate", "x264", "--scale", "0.1", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "x264"
        assert payload["misses"] > 0

    def test_broadcast_protocol(self, capsys):
        assert main(
            ["simulate", "x264", "--scale", "0.1", "--protocol", "broadcast"]
        ) == 0
        assert "protocol=broadcast" in capsys.readouterr().out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["simulate", "not-a-benchmark"])


class TestCompareCommand:
    def test_compares_predictors(self, capsys):
        assert main(
            ["compare", "x264", "--scale", "0.1",
             "--predictors", "SP", "UNI"]
        ) == 0
        out = capsys.readouterr().out
        assert "SP" in out and "UNI" in out
        assert "indirection" in out

    def test_owner2_available(self, capsys):
        assert main(
            ["compare", "x264", "--scale", "0.1",
             "--predictors", "OWNER2"]
        ) == 0
        assert "OWNER2" in capsys.readouterr().out


class TestTraceCommands:
    def test_dump_then_simulate_trace(self, tmp_path, capsys):
        trace = tmp_path / "x264.trace"
        assert main(
            ["dump-trace", "x264", "-o", str(trace), "--scale", "0.1"]
        ) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["simulate", str(trace), "--trace"]) == 0
        assert "workload x264" in capsys.readouterr().out
