"""Tests for the EXPERIMENTS.md report generator."""

import io
import json

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import RunCache
from repro.report import PAPER_CLAIMS, generate_report, _markdown_table
from repro.experiments.common import ExperimentTable


class TestPaperClaims:
    def test_every_experiment_has_a_claim(self):
        assert set(PAPER_CLAIMS) == set(EXPERIMENTS)


class TestMarkdownTable:
    def test_renders_rows(self):
        table = ExperimentTable(
            experiment="Fig. X", title="demo", columns=["a", "b"],
            rows=[{"a": 1, "b": 0.25}],
        )
        text = _markdown_table(table)
        assert "| a | b |" in text
        assert "| 1 | 0.250 |" in text

    def test_missing_cells_blank(self):
        table = ExperimentTable(
            experiment="Fig. X", title="demo", columns=["a", "b"],
            rows=[{"a": 1}],
        )
        assert "| 1 |  |" in _markdown_table(table)


class TestGenerateReport:
    def test_selected_experiments_tiny_scale(self):
        cache = RunCache(scale=0.05)
        buf = io.StringIO()
        selected = ["fig1", "fig7", "table5"]
        generate_report(cache, out=buf, verbose=False, experiments=selected)
        text = buf.getvalue()
        assert text.startswith("# EXPERIMENTS")
        for exp_id in selected:
            assert f"`{exp_id}` regenerated" in text
        assert text.count("**Paper:**") == len(selected)
        assert text.count("**Measured:**") == len(selected)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            generate_report(
                RunCache(scale=0.05), out=io.StringIO(),
                experiments=["nope"],
            )


class TestReportGolden:
    """Golden output on a pinned workload scale.

    The simulator is deterministic, so the fig1 table at scale 0.05 is
    a fixed artifact; pinning a few rows catches silent behaviour drift
    that structural assertions would wave through.  A legitimate model
    change updates these literals — regenerate with
    ``python -m repro.report --scale 0.05`` and copy the fig1 rows.
    """

    @pytest.fixture(scope="class")
    def fig1_text(self):
        cache = RunCache(scale=0.05, verbose=False)
        buf = io.StringIO()
        generate_report(cache, out=buf, verbose=False,
                        experiments=["fig1"])
        return buf.getvalue()

    def test_pinned_rows(self, fig1_text):
        assert "| lu | 8796 | 0.157 | 0.843 |" in fig1_text
        assert "| bodytrack | 21208 | 0.356 | 0.644 |" in fig1_text
        assert "| x264 | 3774 | 0.491 | 0.509 |" in fig1_text

    def test_pinned_average(self, fig1_text):
        assert "| average |  | 0.416 | 0.584 |" in fig1_text

    def test_claim_framing(self, fig1_text):
        assert "**Paper:** communicating misses average 62%" in fig1_text
        assert "`fig1` regenerated" in fig1_text


class TestResultRoundTrip:
    """to_dict -> from_dict -> report surface never raises, per kind."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.workloads import load_benchmark

        return load_benchmark("lu", scale=0.02)

    @pytest.mark.parametrize(
        "kind",
        ("none", "SP", "ADDR", "INST", "UNI", "OWNER2", "ORACLE"),
    )
    def test_round_trip_report_surface(self, workload, kind):
        from repro.obs import metrics_from_result
        from repro.sim.engine import simulate
        from repro.sim.results import SimulationResult

        result = simulate(workload, predictor=kind, collect_epochs=True)
        payload = result.to_dict()
        json.dumps(payload)  # must be JSON-serializable as-is

        restored = SimulationResult.from_dict(payload)
        assert restored.summary() == result.summary()
        assert restored.to_dict() == payload

        # Everything the report/metrics layer reads off a result must
        # hold up on the rehydrated object too.
        metrics = metrics_from_result(restored)
        json.dumps(metrics)
        assert metrics["counters"]["misses"] == result.misses

    def test_kinds_parametrized_matches_factory(self):
        from repro.predictors.factory import PREDICTOR_KINDS

        params = {
            mark.args[1][i]
            for mark in self.test_round_trip_report_surface.pytestmark
            if mark.name == "parametrize"
            for i in range(len(mark.args[1]))
        }
        assert params == set(PREDICTOR_KINDS)
