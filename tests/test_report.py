"""Tests for the EXPERIMENTS.md report generator."""

import io

from repro.experiments import EXPERIMENTS
from repro.experiments.common import RunCache
from repro.report import PAPER_CLAIMS, generate_report, _markdown_table
from repro.experiments.common import ExperimentTable


class TestPaperClaims:
    def test_every_experiment_has_a_claim(self):
        assert set(PAPER_CLAIMS) == set(EXPERIMENTS)


class TestMarkdownTable:
    def test_renders_rows(self):
        table = ExperimentTable(
            experiment="Fig. X", title="demo", columns=["a", "b"],
            rows=[{"a": 1, "b": 0.25}],
        )
        text = _markdown_table(table)
        assert "| a | b |" in text
        assert "| 1 | 0.250 |" in text

    def test_missing_cells_blank(self):
        table = ExperimentTable(
            experiment="Fig. X", title="demo", columns=["a", "b"],
            rows=[{"a": 1}],
        )
        assert "| 1 |  |" in _markdown_table(table)


class TestGenerateReport:
    def test_selected_experiments_tiny_scale(self):
        cache = RunCache(scale=0.05)
        buf = io.StringIO()
        selected = ["fig1", "fig7", "table5"]
        generate_report(cache, out=buf, verbose=False, experiments=selected)
        text = buf.getvalue()
        assert text.startswith("# EXPERIMENTS")
        for exp_id in selected:
            assert f"`{exp_id}` regenerated" in text
        assert text.count("**Paper:**") == len(selected)
        assert text.count("**Measured:**") == len(selected)

    def test_unknown_experiment_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown"):
            generate_report(
                RunCache(scale=0.05), out=io.StringIO(),
                experiments=["nope"],
            )
